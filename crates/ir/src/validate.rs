//! Whole-program validation, run by [`ProgramBuilder::finish`].
//!
//! [`ProgramBuilder::finish`]: crate::ProgramBuilder::finish

use crate::error::IrError;
use crate::ids::Reg;
use crate::instr::Instr;
use crate::method::MethodDef;
use crate::program::Program;

/// Validates every method of `program`.
///
/// # Errors
///
/// Returns the first violation found: out-of-range branch targets or
/// registers, call-arity mismatches, fall-off-the-end bodies, a bad entry
/// point, or a selector/method arity mismatch.
pub fn validate(program: &Program) -> Result<(), IrError> {
    let entry = program.method(program.entry());
    if !entry.kind().is_static() || entry.arity() != 0 {
        return Err(IrError::BadEntryPoint { method: entry.id() });
    }
    for m in program.methods() {
        validate_method(program, m)?;
    }
    for c in program.classes() {
        for (sel, mid) in c.declared_methods() {
            let m = program.method(mid);
            if m.arity() != program.selector(sel).arity() {
                return Err(IrError::SelectorArityMismatch { selector: sel, method: mid });
            }
        }
    }
    Ok(())
}

fn validate_method(program: &Program, m: &MethodDef) -> Result<(), IrError> {
    let len = m.body().len() as u32;
    let nregs = m.num_regs();

    let check_reg = |at: usize, r: Reg| -> Result<(), IrError> {
        if r.0 >= nregs {
            Err(IrError::RegisterOutOfRange { method: m.id(), at, reg: r })
        } else {
            Ok(())
        }
    };

    for (at, instr) in m.body().iter().enumerate() {
        if let Some(t) = instr.branch_target() {
            if t >= len {
                return Err(IrError::BranchOutOfRange { method: m.id(), at, target: t });
            }
        }
        for r in instr_regs(instr) {
            check_reg(at, r)?;
        }
        match instr {
            Instr::CallStatic { callee, args, .. } => {
                let expected = program.method(*callee).total_args();
                if args.len() != expected as usize {
                    return Err(IrError::ArityMismatch {
                        method: m.id(),
                        at,
                        expected,
                        supplied: args.len() as u16,
                    });
                }
            }
            Instr::CallVirtual { selector, args, .. } => {
                let expected = program.selector(*selector).arity();
                if args.len() != expected as usize {
                    return Err(IrError::ArityMismatch {
                        method: m.id(),
                        at,
                        expected,
                        supplied: args.len() as u16,
                    });
                }
            }
            _ => {}
        }
    }

    // The final instruction must not fall off the end of the body.
    match m.body().last() {
        Some(Instr::Return { .. }) | Some(Instr::Jump { .. }) => Ok(()),
        _ => Err(IrError::MissingReturn { method: m.id() }),
    }
}

/// All registers an instruction reads or writes.
fn instr_regs(instr: &Instr) -> Vec<Reg> {
    match instr {
        Instr::Const { dst, .. } | Instr::ConstNull { dst } => vec![*dst],
        Instr::Move { dst, src } => vec![*dst, *src],
        Instr::Bin { dst, lhs, rhs, .. } => vec![*dst, *lhs, *rhs],
        Instr::Work { .. } | Instr::Jump { .. } => vec![],
        Instr::New { dst, .. } => vec![*dst],
        Instr::GetField { dst, obj, .. } => vec![*dst, *obj],
        Instr::PutField { obj, src, .. } => vec![*obj, *src],
        Instr::GetGlobal { dst, .. } => vec![*dst],
        Instr::PutGlobal { src, .. } => vec![*src],
        Instr::ArrNew { dst, len } => vec![*dst, *len],
        Instr::ArrGet { dst, arr, idx } => vec![*dst, *arr, *idx],
        Instr::ArrSet { arr, idx, src } => vec![*arr, *idx, *src],
        Instr::ArrLen { dst, arr } => vec![*dst, *arr],
        Instr::InstanceOf { dst, obj, .. } => vec![*dst, *obj],
        Instr::Branch { lhs, rhs, .. } => vec![*lhs, *rhs],
        Instr::CallStatic { dst, args, .. } => {
            let mut v = args.clone();
            v.extend(*dst);
            v
        }
        Instr::CallVirtual { dst, recv, args, .. } => {
            let mut v = vec![*recv];
            v.extend_from_slice(args);
            v.extend(*dst);
            v
        }
        Instr::Return { src } => src.iter().copied().collect(),
        Instr::GuardClass { recv, .. } | Instr::GuardMethod { recv, .. } => vec![*recv],
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::error::IrError;
    use crate::ids::Reg;
    use crate::instr::BinOp;

    #[test]
    fn rejects_register_out_of_range() {
        let mut b = ProgramBuilder::new();
        let main = {
            let mut m = b.static_method("main", 0);
            // Reg(5) was never allocated (num_regs tracks fresh_reg).
            m.bin(BinOp::Add, Reg(5), Reg(5), Reg(5));
            m.ret(None);
            m.finish()
        };
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, IrError::RegisterOutOfRange { .. }));
    }

    #[test]
    fn rejects_fall_off_end() {
        let mut b = ProgramBuilder::new();
        let main = {
            let mut m = b.static_method("main", 0);
            let r = m.fresh_reg();
            m.const_int(r, 1);
            m.finish()
        };
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, IrError::MissingReturn { .. }));
    }

    #[test]
    fn rejects_static_call_arity_mismatch() {
        let mut b = ProgramBuilder::new();
        let callee = {
            let mut m = b.static_method("callee", 2);
            m.ret(None);
            m.finish()
        };
        let main = {
            let mut m = b.static_method("main", 0);
            let r = m.fresh_reg();
            m.const_int(r, 0);
            m.call_static(None, callee, &[r]); // needs 2 args
            m.ret(None);
            m.finish()
        };
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, IrError::ArityMismatch { expected: 2, supplied: 1, .. }));
    }

    #[test]
    fn rejects_virtual_call_arity_mismatch() {
        let mut b = ProgramBuilder::new();
        let sel = b.selector("f", 1);
        let a = b.class("A", None);
        {
            let mut m = b.virtual_method("A.f", a, sel);
            m.ret(None);
            m.finish();
        }
        let main = {
            let mut m = b.static_method("main", 0);
            let r = m.fresh_reg();
            m.new_obj(r, a);
            m.call_virtual(None, sel, r, &[]); // selector takes 1 arg
            m.ret(None);
            m.finish()
        };
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, IrError::ArityMismatch { expected: 1, supplied: 0, .. }));
    }

    #[test]
    fn rejects_non_static_entry() {
        let mut b = ProgramBuilder::new();
        let sel = b.selector("run", 0);
        let a = b.class("A", None);
        let run = {
            let mut m = b.virtual_method("A.run", a, sel);
            m.ret(None);
            m.finish()
        };
        let err = b.finish(run).unwrap_err();
        assert!(matches!(err, IrError::BadEntryPoint { .. }));
    }

    #[test]
    fn accepts_branch_to_last_instruction() {
        let mut b = ProgramBuilder::new();
        let main = {
            let mut m = b.static_method("main", 0);
            let end = m.label();
            m.jump(end);
            m.bind(end);
            m.ret(None);
            m.finish()
        };
        assert!(b.finish(main).is_ok());
    }
}
