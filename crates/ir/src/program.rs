//! The top-level program container.

use crate::class::{ClassDef, FieldDef, SelectorDef};
use crate::ids::{ClassId, FieldId, GlobalId, MethodId, SelectorId};
use crate::method::MethodDef;
use std::collections::HashMap;

/// A complete, validated program: classes, methods, fields, selectors,
/// globals and an entry point.
///
/// `Program` is immutable after construction via
/// [`ProgramBuilder`](crate::ProgramBuilder); the optimizing compiler never
/// mutates it, it produces separate compiled-code artifacts.
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) classes: Vec<ClassDef>,
    pub(crate) methods: Vec<MethodDef>,
    pub(crate) fields: Vec<FieldDef>,
    pub(crate) selectors: Vec<SelectorDef>,
    pub(crate) global_names: Vec<String>,
    pub(crate) entry: MethodId,
    /// selector → every implementation in the program, used for class
    /// hierarchy analysis.
    pub(crate) impls_by_selector: HashMap<SelectorId, Vec<MethodId>>,
}

impl Program {
    /// Returns the entry-point method (a parameterless static method).
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Returns the class definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// Returns the method definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.index()]
    }

    /// Returns the field definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.index()]
    }

    /// Returns the selector definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn selector(&self, id: SelectorId) -> &SelectorDef {
        &self.selectors[id.index()]
    }

    /// Returns the number of classes in the program.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Returns the number of methods in the program.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Returns the number of global variables in the program.
    pub fn num_globals(&self) -> usize {
        self.global_names.len()
    }

    /// Returns the number of fields in the program.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Returns the number of selectors in the program.
    pub fn num_selectors(&self) -> usize {
        self.selectors.len()
    }

    /// Returns the name of global `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn global_name(&self, id: GlobalId) -> &str {
        &self.global_names[id.index()]
    }

    /// Iterates over all classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter()
    }

    /// Iterates over all methods.
    pub fn methods(&self) -> impl Iterator<Item = &MethodDef> {
        self.methods.iter()
    }

    /// Total abstract bytecode size across all method bodies.
    ///
    /// This is the "Bytecodes" column of the paper's Table 1.
    pub fn total_bytecode_size(&self) -> u64 {
        self.methods.iter().map(|m| m.size_estimate() as u64).sum()
    }

    /// Performs virtual-method lookup: finds the implementation of
    /// `selector` for a receiver of dynamic class `class`, walking up the
    /// superclass chain.
    ///
    /// Returns `None` if neither the class nor any superclass implements the
    /// selector (a runtime dispatch error in the VM).
    pub fn lookup_virtual(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let def = self.class(c);
            if let Some(m) = def.declared_impl(selector) {
                return Some(m);
            }
            cur = def.superclass();
        }
        None
    }

    /// Returns every implementation of `selector` in the program.
    ///
    /// This is the (whole-program) class-hierarchy-analysis answer used by
    /// the optimizer: a virtual call whose selector has exactly one
    /// implementation can be statically bound without a guard.
    pub fn implementations(&self, selector: SelectorId) -> &[MethodId] {
        self.impls_by_selector
            .get(&selector)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns `true` if `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).superclass();
        }
        false
    }

    /// Looks up a method by name. Intended for tests and diagnostics; O(n).
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.methods.iter().find(|m| m.name == name).map(|m| m.id)
    }

    /// Looks up a class by name. Intended for tests and diagnostics; O(n).
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes.iter().find(|c| c.name == name).map(|c| c.id)
    }
}
