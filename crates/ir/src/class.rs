//! Class, field and selector definitions.

use crate::ids::{ClassId, FieldId, MethodId, SelectorId};
use std::collections::HashMap;

/// A class definition: name, optional superclass, declared fields and the
/// virtual-method table mapping selectors to implementations.
///
/// Classes use single inheritance. Method lookup (see
/// [`Program::lookup_virtual`](crate::Program::lookup_virtual)) walks the
/// superclass chain, so a class inherits every selector implementation it
/// does not override.
#[derive(Clone, Debug)]
pub struct ClassDef {
    pub(crate) id: ClassId,
    pub(crate) name: String,
    pub(crate) superclass: Option<ClassId>,
    /// Fields declared directly on this class (not inherited).
    pub(crate) declared_fields: Vec<FieldId>,
    /// Total number of field slots in instances (inherited + declared).
    pub(crate) layout_size: u32,
    /// Selector → implementation for methods declared directly on this class.
    pub(crate) vtable: HashMap<SelectorId, MethodId>,
    /// Depth in the inheritance tree (root classes have depth 0).
    pub(crate) depth: u32,
}

impl ClassDef {
    /// Returns this class's id.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// Returns the class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the direct superclass, if any.
    pub fn superclass(&self) -> Option<ClassId> {
        self.superclass
    }

    /// Returns the fields declared directly on this class.
    pub fn declared_fields(&self) -> &[FieldId] {
        &self.declared_fields
    }

    /// Returns the number of field slots an instance of this class has,
    /// including inherited fields.
    pub fn layout_size(&self) -> u32 {
        self.layout_size
    }

    /// Returns the method implementing `selector` declared *directly* on
    /// this class (not inherited).
    pub fn declared_impl(&self, selector: SelectorId) -> Option<MethodId> {
        self.vtable.get(&selector).copied()
    }

    /// Returns this class's depth in the inheritance tree.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Iterates over `(selector, method)` pairs declared directly on this
    /// class, in unspecified order.
    pub fn declared_methods(&self) -> impl Iterator<Item = (SelectorId, MethodId)> + '_ {
        self.vtable.iter().map(|(&s, &m)| (s, m))
    }
}

/// A field definition.
#[derive(Clone, Debug)]
pub struct FieldDef {
    pub(crate) id: FieldId,
    pub(crate) name: String,
    pub(crate) owner: ClassId,
    /// Slot index within instances of the owning class (and subclasses).
    pub(crate) offset: u32,
}

impl FieldDef {
    /// Returns this field's id.
    pub fn id(&self) -> FieldId {
        self.id
    }

    /// Returns the field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the class that declares this field.
    pub fn owner(&self) -> ClassId {
        self.owner
    }

    /// Returns the slot index of this field within object layouts.
    pub fn offset(&self) -> u32 {
        self.offset
    }
}

/// A virtual-dispatch selector: a method name plus arity (excluding the
/// receiver).
#[derive(Clone, Debug)]
pub struct SelectorDef {
    pub(crate) id: SelectorId,
    pub(crate) name: String,
    pub(crate) arity: u16,
}

impl SelectorDef {
    /// Returns this selector's id.
    pub fn id(&self) -> SelectorId {
        self.id
    }

    /// Returns the selector name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of arguments (excluding the receiver) that calls
    /// through this selector pass.
    pub fn arity(&self) -> u16 {
        self.arity
    }
}
