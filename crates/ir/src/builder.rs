//! Fluent construction of programs and method bodies.

use crate::class::{ClassDef, FieldDef, SelectorDef};
use crate::error::IrError;
use crate::ids::{ClassId, FieldId, GlobalId, Label, MethodId, Reg, SelectorId, SiteIdx};
use crate::instr::{BinOp, Cond, Instr};
use crate::method::{MethodDef, MethodKind};
use crate::program::Program;
use crate::size;
use crate::validate;
use std::collections::HashMap;

/// Incrementally builds a [`Program`].
///
/// Declare classes, fields, selectors and globals, then build method bodies
/// with [`MethodBuilder`]s obtained from [`ProgramBuilder::static_method`] /
/// [`ProgramBuilder::virtual_method`]. Finally call
/// [`ProgramBuilder::finish`] with the entry point; the whole program is
/// validated at that point.
///
/// Superclasses must be declared before their subclasses, which guarantees
/// the inheritance graph is acyclic by construction.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<ClassDef>,
    methods: Vec<Option<MethodDef>>,
    fields: Vec<FieldDef>,
    selectors: Vec<SelectorDef>,
    selector_index: HashMap<(String, u16), SelectorId>,
    global_names: Vec<String>,
    errors: Vec<IrError>,
    class_names: HashMap<String, ClassId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class with an optional superclass.
    ///
    /// The superclass, if given, must have been declared earlier by this
    /// builder. Duplicate class names are reported at [`finish`] time.
    ///
    /// [`finish`]: ProgramBuilder::finish
    pub fn class(&mut self, name: impl Into<String>, superclass: Option<ClassId>) -> ClassId {
        let name = name.into();
        let id = ClassId(self.classes.len() as u32);
        if let Some(sup) = superclass {
            if sup.index() >= self.classes.len() {
                self.errors.push(IrError::UnknownClass { class: sup });
            }
        }
        if self.class_names.insert(name.clone(), id).is_some() {
            self.errors.push(IrError::DuplicateClassName { name: name.clone() });
        }
        self.classes.push(ClassDef {
            id,
            name,
            superclass,
            declared_fields: Vec::new(),
            layout_size: 0, // finalized in `finish`
            vtable: HashMap::new(),
            depth: 0, // finalized in `finish`
        });
        id
    }

    /// Declares a field on `class`. Layout offsets are assigned at
    /// [`finish`](ProgramBuilder::finish) time.
    pub fn field(&mut self, class: ClassId, name: impl Into<String>) -> FieldId {
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(FieldDef {
            id,
            name: name.into(),
            owner: class,
            offset: 0, // finalized in `finish`
        });
        if let Some(c) = self.classes.get_mut(class.index()) {
            c.declared_fields.push(id);
        } else {
            self.errors.push(IrError::UnknownClass { class });
        }
        id
    }

    /// Declares (or returns the existing) selector with the given name and
    /// arity (excluding the receiver).
    pub fn selector(&mut self, name: impl Into<String>, arity: u16) -> SelectorId {
        let name = name.into();
        if let Some(&id) = self.selector_index.get(&(name.clone(), arity)) {
            return id;
        }
        let id = SelectorId(self.selectors.len() as u32);
        self.selectors.push(SelectorDef { id, name: name.clone(), arity });
        self.selector_index.insert((name, arity), id);
        id
    }

    /// Declares a global (static) variable, initialised to integer 0.
    pub fn global(&mut self, name: impl Into<String>) -> GlobalId {
        let id = GlobalId(self.global_names.len() as u32);
        self.global_names.push(name.into());
        id
    }

    /// Starts building a static method with `arity` parameters.
    pub fn static_method(&mut self, name: impl Into<String>, arity: u16) -> MethodBuilder<'_> {
        let id = self.alloc_method();
        MethodBuilder::new(self, id, name.into(), MethodKind::Static, arity)
    }

    /// Starts building a virtual method implementing `selector` on `class`.
    ///
    /// The method is installed in the class's vtable immediately, so
    /// recursive and mutually-virtual calls can be expressed. Its arity is
    /// the selector's arity.
    pub fn virtual_method(
        &mut self,
        name: impl Into<String>,
        class: ClassId,
        selector: SelectorId,
    ) -> MethodBuilder<'_> {
        let id = self.alloc_method();
        let arity = self.selectors[selector.index()].arity;
        if let Some(c) = self.classes.get_mut(class.index()) {
            c.vtable.insert(selector, id);
        } else {
            self.errors.push(IrError::UnknownClass { class });
        }
        MethodBuilder::new(
            self,
            id,
            name.into(),
            MethodKind::Virtual { owner: class, selector },
            arity,
        )
    }

    fn alloc_method(&mut self) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(None);
        id
    }

    pub(crate) fn install(&mut self, def: MethodDef) {
        let idx = def.id.index();
        self.methods[idx] = Some(def);
    }

    pub(crate) fn push_error(&mut self, e: IrError) {
        self.errors.push(e);
    }

    /// Finalises the program with `entry` as the entry point.
    ///
    /// Computes field layouts and class depths, indexes selector
    /// implementations, and validates every method body.
    ///
    /// # Errors
    ///
    /// Returns the first construction or validation error encountered (label
    /// fixup failures, branch/register/arity violations, bad entry point,
    /// duplicate class names).
    pub fn finish(mut self, entry: MethodId) -> Result<Program, IrError> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }

        // Field layouts: classes are declared parents-first, so a single
        // in-order pass suffices.
        for ci in 0..self.classes.len() {
            let (parent_size, depth) = match self.classes[ci].superclass {
                Some(sup) => {
                    let s = &self.classes[sup.index()];
                    (s.layout_size, s.depth + 1)
                }
                None => (0, 0),
            };
            let declared = self.classes[ci].declared_fields.clone();
            for (k, fid) in declared.iter().enumerate() {
                self.fields[fid.index()].offset = parent_size + k as u32;
            }
            self.classes[ci].layout_size = parent_size + declared.len() as u32;
            self.classes[ci].depth = depth;
        }

        let methods: Vec<MethodDef> = self
            .methods
            .into_iter()
            .map(|m| m.expect("every allocated method must be finished"))
            .collect();

        let mut impls_by_selector: HashMap<SelectorId, Vec<MethodId>> = HashMap::new();
        for c in &self.classes {
            for (&sel, &m) in &c.vtable {
                impls_by_selector.entry(sel).or_default().push(m);
            }
        }
        for v in impls_by_selector.values_mut() {
            v.sort();
        }

        let program = Program {
            classes: self.classes,
            methods,
            fields: self.fields,
            selectors: self.selectors,
            global_names: self.global_names,
            entry,
            impls_by_selector,
        };

        validate::validate(&program)?;
        Ok(program)
    }
}

/// Builds one method body; obtained from
/// [`ProgramBuilder::static_method`] or [`ProgramBuilder::virtual_method`].
///
/// Registers `0..total_args` hold the incoming arguments (register 0 is the
/// receiver for virtual methods); [`MethodBuilder::fresh_reg`] allocates
/// scratch registers above them. Branch targets are expressed with labels
/// ([`MethodBuilder::label`] / [`MethodBuilder::bind`]) and resolved when
/// [`MethodBuilder::finish`] is called.
#[derive(Debug)]
pub struct MethodBuilder<'p> {
    parent: &'p mut ProgramBuilder,
    id: MethodId,
    name: String,
    kind: MethodKind,
    arity: u16,
    next_reg: u16,
    body: Vec<Instr>,
    next_site: u16,
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, Label)>,
}

impl<'p> MethodBuilder<'p> {
    fn new(
        parent: &'p mut ProgramBuilder,
        id: MethodId,
        name: String,
        kind: MethodKind,
        arity: u16,
    ) -> Self {
        let total_args = match kind {
            MethodKind::Static => arity,
            MethodKind::Virtual { .. } => arity + 1,
        };
        MethodBuilder {
            parent,
            id,
            name,
            kind,
            arity,
            next_reg: total_args,
            body: Vec::new(),
            next_site: 0,
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Returns the id the finished method will have.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// Returns the receiver register (virtual methods only).
    pub fn receiver(&self) -> Option<Reg> {
        match self.kind {
            MethodKind::Static => None,
            MethodKind::Virtual { .. } => Some(Reg(0)),
        }
    }

    /// Returns the register holding declared parameter `i` (0-based,
    /// excluding the receiver).
    ///
    /// # Panics
    ///
    /// Panics if `i >= arity`.
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.arity, "parameter index out of range");
        match self.kind {
            MethodKind::Static => Reg(i),
            MethodKind::Virtual { .. } => Reg(i + 1),
        }
    }

    /// Allocates a fresh scratch register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Returns the index the next emitted instruction will have.
    pub fn next_index(&self) -> usize {
        self.body.len()
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.body.len() as u32);
    }

    fn emit(&mut self, i: Instr) {
        self.body.push(i);
    }

    /// Emits `dst = value`.
    pub fn const_int(&mut self, dst: Reg, value: i64) {
        self.emit(Instr::Const { dst, value });
    }

    /// Emits `dst = null`.
    pub fn const_null(&mut self, dst: Reg) {
        self.emit(Instr::ConstNull { dst });
    }

    /// Emits `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Instr::Move { dst, src });
    }

    /// Emits `dst = lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: Reg) {
        self.emit(Instr::Bin { op, dst, lhs, rhs });
    }

    /// Emits a straight-line block of `units` abstract instructions of work.
    pub fn work(&mut self, units: u32) {
        self.emit(Instr::Work { units });
    }

    /// Emits `dst = new class`.
    pub fn new_obj(&mut self, dst: Reg, class: ClassId) {
        self.emit(Instr::New { dst, class });
    }

    /// Emits `dst = obj.field`.
    pub fn get_field(&mut self, dst: Reg, obj: Reg, field: FieldId) {
        self.emit(Instr::GetField { dst, obj, field });
    }

    /// Emits `obj.field = src`.
    pub fn put_field(&mut self, obj: Reg, field: FieldId, src: Reg) {
        self.emit(Instr::PutField { obj, field, src });
    }

    /// Emits `dst = global`.
    pub fn get_global(&mut self, dst: Reg, global: GlobalId) {
        self.emit(Instr::GetGlobal { dst, global });
    }

    /// Emits `global = src`.
    pub fn put_global(&mut self, global: GlobalId, src: Reg) {
        self.emit(Instr::PutGlobal { global, src });
    }

    /// Emits `dst = new array[len]`.
    pub fn arr_new(&mut self, dst: Reg, len: Reg) {
        self.emit(Instr::ArrNew { dst, len });
    }

    /// Emits `dst = arr[idx]`.
    pub fn arr_get(&mut self, dst: Reg, arr: Reg, idx: Reg) {
        self.emit(Instr::ArrGet { dst, arr, idx });
    }

    /// Emits `arr[idx] = src`.
    pub fn arr_set(&mut self, arr: Reg, idx: Reg, src: Reg) {
        self.emit(Instr::ArrSet { arr, idx, src });
    }

    /// Emits `dst = arr.length`.
    pub fn arr_len(&mut self, dst: Reg, arr: Reg) {
        self.emit(Instr::ArrLen { dst, arr });
    }

    /// Emits `dst = obj instanceof class`.
    pub fn instance_of(&mut self, dst: Reg, obj: Reg, class: ClassId) {
        self.emit(Instr::InstanceOf { dst, obj, class });
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        let at = self.body.len();
        self.fixups.push((at, label));
        self.emit(Instr::Jump { target: u32::MAX });
    }

    /// Emits a conditional branch to `label` when `lhs cond rhs`.
    pub fn branch(&mut self, cond: Cond, lhs: Reg, rhs: Reg, label: Label) {
        let at = self.body.len();
        self.fixups.push((at, label));
        self.emit(Instr::Branch { cond, lhs, rhs, target: u32::MAX });
    }

    /// Emits a static call; returns the new call site's index.
    pub fn call_static(&mut self, dst: Option<Reg>, callee: MethodId, args: &[Reg]) -> SiteIdx {
        let site = SiteIdx(self.next_site);
        self.next_site += 1;
        self.emit(Instr::CallStatic { site, dst, callee, args: args.to_vec() });
        site
    }

    /// Emits a virtual call; returns the new call site's index.
    pub fn call_virtual(
        &mut self,
        dst: Option<Reg>,
        selector: SelectorId,
        recv: Reg,
        args: &[Reg],
    ) -> SiteIdx {
        let site = SiteIdx(self.next_site);
        self.next_site += 1;
        self.emit(Instr::CallVirtual { site, dst, selector, recv, args: args.to_vec() });
        site
    }

    /// Emits a return.
    pub fn ret(&mut self, src: Option<Reg>) {
        self.emit(Instr::Return { src });
    }

    /// Resolves labels, installs the method in the program builder and
    /// returns its id.
    ///
    /// Label-resolution failures are recorded on the parent builder and
    /// reported by [`ProgramBuilder::finish`].
    pub fn finish(mut self) -> MethodId {
        let mut unbound = false;
        for (at, label) in std::mem::take(&mut self.fixups) {
            match self.labels[label.0 as usize] {
                Some(target) => self.body[at].map_branch_target(|_| target),
                None => unbound = true,
            }
        }
        if unbound {
            let name = self.name.clone();
            self.parent.push_error(IrError::UnboundLabel { method: name });
        }
        let size_estimate = size::body_size(&self.body);
        let def = MethodDef {
            id: self.id,
            name: self.name,
            kind: self.kind,
            arity: self.arity,
            num_regs: self.next_reg,
            body: self.body,
            num_sites: self.next_site,
            size_estimate,
        };
        let id = def.id;
        self.parent.install(def);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_main(b: &mut ProgramBuilder) -> MethodId {
        let mut m = b.static_method("main", 0);
        m.ret(None);
        m.finish()
    }

    #[test]
    fn builds_minimal_program() {
        let mut b = ProgramBuilder::new();
        let main = trivial_main(&mut b);
        let p = b.finish(main).unwrap();
        assert_eq!(p.num_methods(), 1);
        assert_eq!(p.entry(), main);
    }

    #[test]
    fn field_layout_includes_inherited() {
        let mut b = ProgramBuilder::new();
        let a = b.class("A", None);
        let fa = b.field(a, "x");
        let c = b.class("B", Some(a));
        let fb = b.field(c, "y");
        let main = trivial_main(&mut b);
        let p = b.finish(main).unwrap();
        assert_eq!(p.field(fa).offset(), 0);
        assert_eq!(p.field(fb).offset(), 1);
        assert_eq!(p.class(a).layout_size(), 1);
        assert_eq!(p.class(c).layout_size(), 2);
        assert_eq!(p.class(c).depth(), 1);
    }

    #[test]
    fn selector_deduplication() {
        let mut b = ProgramBuilder::new();
        let s1 = b.selector("foo", 2);
        let s2 = b.selector("foo", 2);
        let s3 = b.selector("foo", 3);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn virtual_dispatch_walks_hierarchy() {
        let mut b = ProgramBuilder::new();
        let sel = b.selector("go", 0);
        let a = b.class("A", None);
        let sub = b.class("Sub", Some(a));
        let m = {
            let mut mb = b.virtual_method("A.go", a, sel);
            mb.ret(None);
            mb.finish()
        };
        let main = trivial_main(&mut b);
        let p = b.finish(main).unwrap();
        assert_eq!(p.lookup_virtual(sub, sel), Some(m));
        assert_eq!(p.lookup_virtual(a, sel), Some(m));
        assert_eq!(p.implementations(sel), &[m]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        let main = {
            let mut m = b.static_method("main", 0);
            let r = m.fresh_reg();
            m.const_int(r, 3);
            let top = m.label();
            let out = m.label();
            m.bind(top);
            m.branch(Cond::Le, r, r, out); // always taken
            m.jump(top);
            m.bind(out);
            m.ret(None);
            m.finish()
        };
        let p = b.finish(main).unwrap();
        let body = p.method(main).body();
        assert_eq!(body[1].branch_target(), Some(3));
        assert_eq!(body[2].branch_target(), Some(1));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let main = {
            let mut m = b.static_method("main", 0);
            let l = m.label();
            m.jump(l);
            m.ret(None);
            m.finish()
        };
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, IrError::UnboundLabel { .. }));
    }

    #[test]
    fn duplicate_class_name_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.class("A", None);
        b.class("A", None);
        let main = trivial_main(&mut b);
        let err = b.finish(main).unwrap_err();
        assert!(matches!(err, IrError::DuplicateClassName { .. }));
    }

    #[test]
    fn call_sites_number_densely() {
        let mut b = ProgramBuilder::new();
        let callee = {
            let mut m = b.static_method("callee", 0);
            m.ret(None);
            m.finish()
        };
        let main = {
            let mut m = b.static_method("main", 0);
            let s0 = m.call_static(None, callee, &[]);
            let s1 = m.call_static(None, callee, &[]);
            m.ret(None);
            assert_eq!((s0, s1), (SiteIdx(0), SiteIdx(1)));
            m.finish()
        };
        let p = b.finish(main).unwrap();
        assert_eq!(p.method(main).num_sites(), 2);
        assert_eq!(p.method(main).site_instr_index(SiteIdx(1)), Some(1));
    }

    #[test]
    fn params_and_receiver_registers() {
        let mut b = ProgramBuilder::new();
        let sel = b.selector("f", 2);
        let a = b.class("A", None);
        {
            let mut m = b.virtual_method("A.f", a, sel);
            assert_eq!(m.receiver(), Some(Reg(0)));
            assert_eq!(m.param(0), Reg(1));
            assert_eq!(m.param(1), Reg(2));
            let r = m.fresh_reg();
            assert_eq!(r, Reg(3));
            m.ret(None);
            m.finish();
        }
        {
            let mut m = b.static_method("g", 1);
            assert_eq!(m.receiver(), None);
            assert_eq!(m.param(0), Reg(0));
            m.ret(None);
            m.finish();
        }
    }
}
