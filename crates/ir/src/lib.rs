//! # aoci-ir — object-oriented bytecode IR
//!
//! This crate defines the program representation used throughout the AOCI
//! workspace: a compact, register-based, object-oriented bytecode with
//! classes, single inheritance, virtual and static dispatch, fields, globals
//! and arrays. It plays the role that Java bytecode plays for Jikes RVM in
//! the paper *Adaptive Online Context-Sensitive Inlining* (CGO 2003): the
//! common input language of the baseline interpreter (`aoci-vm`) and the
//! optimizing, inlining compiler (`aoci-opt`).
//!
//! The IR is deliberately small but is a *real* executable representation —
//! inlining in this workspace is a genuine IR-to-IR transform whose output
//! the VM executes, so guard failures, virtual-dispatch fallbacks and
//! call-overhead elimination are observable behaviours rather than modelled
//! constants.
//!
//! ## Quick example
//!
//! ```
//! use aoci_ir::{ProgramBuilder, BinOp};
//!
//! let mut b = ProgramBuilder::new();
//! let object = b.class("Object", None);
//! let main = {
//!     let mut m = b.static_method("Main.main", 0);
//!     let r = m.fresh_reg();
//!     m.const_int(r, 21);
//!     m.bin(BinOp::Add, r, r, r);
//!     m.ret(Some(r));
//!     m.finish()
//! };
//! let program = b.finish(main).expect("valid program");
//! assert_eq!(program.method(main).name(), "Main.main");
//! assert!(program.class(object).superclass().is_none());
//! ```

#![warn(missing_docs)]

mod builder;
mod class;
mod decoded;
mod disasm;
mod error;
mod ids;
mod instr;
mod method;
mod program;
pub mod size;
pub mod typecheck;
mod validate;

pub use builder::{MethodBuilder, ProgramBuilder};
pub use class::{ClassDef, FieldDef, SelectorDef};
pub use decoded::{
    decode_body, decode_op, encode_body, encode_op, fused_kind, fusion_plan, DecodedOp, FusedKind,
};
pub use disasm::{disassemble, disassemble_method};
pub use error::IrError;
pub use ids::{CallSiteRef, ClassId, FieldId, GlobalId, Label, MethodId, Reg, SelectorId, SiteIdx};
pub use instr::{BinOp, Cond, Instr};
pub use method::{MethodDef, MethodKind};
pub use program::Program;
pub use size::{
    SizeClass, CALL_SEQUENCE_SIZE, LARGE_FACTOR, MEDIUM_FACTOR, SMALL_FACTOR, TINY_FACTOR,
};
