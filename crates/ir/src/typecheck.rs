//! Whole-program type inference and verification.
//!
//! The AOCI bytecode is untyped at the instruction level (like Java
//! bytecode before verification). This module reconstructs types by
//! **unification**: every register, method parameter, method return, field,
//! global, selector slot and array-element position gets a type variable;
//! instructions contribute equality and shape constraints; conflicts are
//! reported with their location.
//!
//! Verification is flow-insensitive over value *shapes* (a register keeps
//! one shape for the whole method body) plus a flow-sensitive
//! **definite-assignment** analysis (every register is written on all paths
//! before any read). Programs produced by the builders in this workspace
//! are effectively SSA-like and verify cleanly; the pass exists to catch
//! generator and compiler bugs early and to document the typing discipline
//! the VM's runtime checks enforce dynamically.
//!
//! ## Guarantee and caveat
//!
//! For a program that verifies, no *register* use can fault with a type
//! error or read an uninitialised register. Heap locations (fields, array
//! elements, globals) are typed consistently across all reads and writes,
//! but a read *before any write* observes the VM's default value (null /
//! integer 0), which can still fault downstream; write-before-read
//! discipline remains the program's responsibility.
//!
//! ```
//! use aoci_ir::{typecheck, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! let main = {
//!     let mut m = b.static_method("main", 0);
//!     let r = m.fresh_reg();
//!     m.const_int(r, 1);
//!     m.ret(Some(r));
//!     m.finish()
//! };
//! let program = b.finish(main)?;
//! typecheck::verify(&program)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::ids::{MethodId, Reg};
use crate::instr::{Cond, Instr};
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// A resolved value shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// 64-bit integer.
    Int,
    /// Reference to an object.
    Obj,
    /// Reference to an array (element shape may itself be unresolved).
    Array,
    /// Never constrained — the slot is unused.
    Unknown,
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Shape::Int => "int",
            Shape::Obj => "object",
            Shape::Array => "array",
            Shape::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// A verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeError {
    /// Two incompatible shapes met in one equivalence class.
    Mismatch {
        /// Method containing the conflicting constraint.
        method: MethodId,
        /// Instruction index of the conflicting constraint.
        at: usize,
        /// Shape already established.
        expected: Shape,
        /// Shape the instruction required.
        found: Shape,
    },
    /// A register may be read before it is written on some path.
    MaybeUninitialised {
        /// Method containing the use.
        method: MethodId,
        /// Instruction index of the use.
        at: usize,
        /// The offending register.
        reg: Reg,
    },
    /// A method mixes `return` with and without a value.
    InconsistentReturns {
        /// The offending method.
        method: MethodId,
    },
    /// A caller uses the return value of a method that never returns one.
    VoidResultUsed {
        /// Method containing the call.
        method: MethodId,
        /// Instruction index of the call.
        at: usize,
        /// The void callee.
        callee: MethodId,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch { method, at, expected, found } => write!(
                f,
                "type mismatch in {method} at {at}: {expected} vs {found}"
            ),
            TypeError::MaybeUninitialised { method, at, reg } => write!(
                f,
                "register {reg} may be read before assignment in {method} at {at}"
            ),
            TypeError::InconsistentReturns { method } => {
                write!(f, "method {method} mixes value and void returns")
            }
            TypeError::VoidResultUsed { method, at, callee } => write!(
                f,
                "call in {method} at {at} uses the result of void method {callee}"
            ),
        }
    }
}

impl Error for TypeError {}

/// Types inferred for a verified program.
#[derive(Clone, Debug)]
pub struct TypeReport {
    /// Shape of each global variable.
    pub globals: Vec<Shape>,
    /// Shape of each field.
    pub fields: Vec<Shape>,
    /// Per method: parameter shapes (including the receiver for virtual
    /// methods) and the return shape (`None` for void methods).
    pub methods: Vec<(Vec<Shape>, Option<Shape>)>,
}

// ---------------------------------------------------------------------------
// Union-find over shape variables.

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tag {
    Int,
    Obj,
    /// Array whose element variable is the payload.
    Array(u32),
    /// Some reference (null literal) — compatible with Obj and Array.
    AnyRef,
}

struct Table {
    parent: Vec<u32>,
    tag: Vec<Option<Tag>>,
}

impl Table {
    fn new() -> Self {
        Table { parent: Vec::new(), tag: Vec::new() }
    }

    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.tag.push(None);
        id
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unifies two variables; on conflict returns the two irreconcilable
    /// shapes.
    fn unify(&mut self, a: u32, b: u32) -> Result<(), (Shape, Shape)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        let merged = match (self.tag[ra as usize], self.tag[rb as usize]) {
            (None, t) | (t, None) => t,
            (Some(x), Some(y)) => Some(self.merge_tags(x, y)?),
        };
        self.parent[rb as usize] = ra;
        self.tag[ra as usize] = merged;
        Ok(())
    }

    fn merge_tags(&mut self, x: Tag, y: Tag) -> Result<Tag, (Shape, Shape)> {
        match (x, y) {
            (Tag::Int, Tag::Int) => Ok(Tag::Int),
            (Tag::Obj, Tag::Obj) => Ok(Tag::Obj),
            (Tag::AnyRef, Tag::AnyRef) => Ok(Tag::AnyRef),
            (Tag::AnyRef, t @ (Tag::Obj | Tag::Array(_)))
            | (t @ (Tag::Obj | Tag::Array(_)), Tag::AnyRef) => Ok(t),
            (Tag::Array(e1), Tag::Array(e2)) => {
                self.unify(e1, e2)?;
                Ok(Tag::Array(e1))
            }
            (a, b) => Err((tag_shape(a), tag_shape(b))),
        }
    }

    /// Constrains a variable to a tag.
    fn require(&mut self, v: u32, t: Tag) -> Result<(), (Shape, Shape)> {
        let r = self.find(v);
        match self.tag[r as usize] {
            None => {
                self.tag[r as usize] = Some(t);
                Ok(())
            }
            Some(existing) => {
                let merged = self.merge_tags(existing, t)?;
                let r = self.find(v);
                self.tag[r as usize] = Some(merged);
                Ok(())
            }
        }
    }

    fn shape(&mut self, v: u32) -> Shape {
        let r = self.find(v);
        match self.tag[r as usize] {
            None => Shape::Unknown,
            Some(t) => tag_shape(t),
        }
    }
}

fn tag_shape(t: Tag) -> Shape {
    match t {
        Tag::Int => Shape::Int,
        Tag::Obj => Shape::Obj,
        Tag::Array(_) => Shape::Array,
        Tag::AnyRef => Shape::Obj,
    }
}

// ---------------------------------------------------------------------------

struct Checker<'p> {
    program: &'p Program,
    table: Table,
    /// Register variables, per method: `reg_vars[m][r]`.
    reg_vars: Vec<Vec<u32>>,
    global_vars: Vec<u32>,
    field_vars: Vec<u32>,
    /// Return variable per method, plus whether it returns a value
    /// (`None` = not yet known).
    ret_vars: Vec<u32>,
    returns_value: Vec<Option<bool>>,
    /// Parameter + return variables per selector.
    selector_param_vars: Vec<Vec<u32>>,
    selector_ret_vars: Vec<u32>,
}

/// Infers and verifies types for the whole program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found: a shape conflict, a possibly
/// uninitialised register read, inconsistent returns, or use of a void
/// result.
pub fn verify(program: &Program) -> Result<TypeReport, TypeError> {
    let mut table = Table::new();
    let reg_vars: Vec<Vec<u32>> = program
        .methods()
        .map(|m| (0..m.num_regs()).map(|_| table.fresh()).collect())
        .collect();
    let global_vars: Vec<u32> = (0..program.num_globals()).map(|_| table.fresh()).collect();
    let field_vars: Vec<u32> = (0..program.classes().map(|c| c.declared_fields().len()).sum())
        .map(|_| table.fresh())
        .collect();
    let ret_vars: Vec<u32> = program.methods().map(|_| table.fresh()).collect();
    let selector_param_vars: Vec<Vec<u32>> = (0..program.num_selectors())
        .map(|s| {
            let arity = program
                .selector(crate::ids::SelectorId::from_index(s))
                .arity();
            (0..arity).map(|_| table.fresh()).collect()
        })
        .collect();
    let selector_ret_vars: Vec<u32> =
        (0..program.num_selectors()).map(|_| table.fresh()).collect();

    // Per-method return discipline: all returns agree on value vs void.
    let mut returns_value: Vec<Option<bool>> = vec![None; program.num_methods()];
    for m in program.methods() {
        for instr in m.body() {
            if let Instr::Return { src } = instr {
                let has = src.is_some();
                match returns_value[m.id().index()] {
                    None => returns_value[m.id().index()] = Some(has),
                    Some(prev) if prev != has => {
                        return Err(TypeError::InconsistentReturns { method: m.id() });
                    }
                    _ => {}
                }
            }
        }
    }

    let mut checker = Checker {
        program,
        table,
        reg_vars,
        global_vars,
        field_vars,
        ret_vars,
        returns_value,
        selector_param_vars,
        selector_ret_vars,
    };

    // Receivers are objects; virtual methods agree with their selector.
    for m in program.methods() {
        if let crate::method::MethodKind::Virtual { selector, .. } = m.kind() {
            let mid = m.id();
            checker
                .table
                .require(checker.reg_vars[mid.index()][0], Tag::Obj)
                .map_err(|(e, f)| mismatch(mid, 0, e, f))?;
            for k in 0..m.arity() {
                let pv = checker.reg_vars[mid.index()][(k + 1) as usize];
                let sv = checker.selector_param_vars[selector.index()][k as usize];
                checker
                    .table
                    .unify(pv, sv)
                    .map_err(|(e, f)| mismatch(mid, 0, e, f))?;
            }
            checker
                .table
                .unify(checker.ret_vars[mid.index()], checker.selector_ret_vars[selector.index()])
                .map_err(|(e, f)| mismatch(mid, 0, e, f))?;
        }
    }

    for m in program.methods() {
        checker.check_method(m.id())?;
        definite_assignment(program, m.id())?;
    }

    // Void-result consistency: any call that captured a dst requires the
    // callee to return a value.
    for m in program.methods() {
        for (at, instr) in m.body().iter().enumerate() {
            if let Instr::CallStatic { dst: Some(_), callee, .. } = instr {
                if checker.returns_value[callee.index()] == Some(false) {
                    return Err(TypeError::VoidResultUsed { method: m.id(), at, callee: *callee });
                }
            }
        }
    }

    let globals = checker
        .global_vars
        .clone()
        .into_iter()
        .map(|v| checker.table.shape(v))
        .collect();
    let fields = checker
        .field_vars
        .clone()
        .into_iter()
        .map(|v| checker.table.shape(v))
        .collect();
    let methods = program
        .methods()
        .map(|m| {
            let params: Vec<Shape> = (0..m.total_args())
                .map(|k| {
                    let v = checker.reg_vars[m.id().index()][k as usize];
                    checker.table.shape(v)
                })
                .collect();
            let ret = if checker.returns_value[m.id().index()] == Some(true) {
                let v = checker.ret_vars[m.id().index()];
                Some(checker.table.shape(v))
            } else {
                None
            };
            (params, ret)
        })
        .collect();
    Ok(TypeReport { globals, fields, methods })
}

fn mismatch(method: MethodId, at: usize, expected: Shape, found: Shape) -> TypeError {
    TypeError::Mismatch { method, at, expected, found }
}

impl<'p> Checker<'p> {
    fn rv(&self, m: MethodId, r: Reg) -> u32 {
        self.reg_vars[m.index()][r.index()]
    }

    fn check_method(&mut self, mid: MethodId) -> Result<(), TypeError> {
        let body: Vec<Instr> = self.program.method(mid).body().to_vec();
        for (at, instr) in body.iter().enumerate() {
            self.check_instr(mid, at, instr)
                .map_err(|(e, f)| mismatch(mid, at, e, f))?;
        }
        Ok(())
    }

    fn check_instr(
        &mut self,
        m: MethodId,
        at: usize,
        instr: &Instr,
    ) -> Result<(), (Shape, Shape)> {
        match instr {
            Instr::Const { dst, .. } => self.table.require(self.reg_vars[m.index()][dst.index()], Tag::Int),
            Instr::ConstNull { dst } => {
                self.table.require(self.reg_vars[m.index()][dst.index()], Tag::AnyRef)
            }
            Instr::Move { dst, src } => self.table.unify(self.rv(m, *dst), self.rv(m, *src)),
            Instr::Bin { dst, lhs, rhs, .. } => {
                self.table.require(self.rv(m, *dst), Tag::Int)?;
                self.table.require(self.rv(m, *lhs), Tag::Int)?;
                self.table.require(self.rv(m, *rhs), Tag::Int)
            }
            Instr::Work { .. } | Instr::Jump { .. } => Ok(()),
            Instr::New { dst, .. } => self.table.require(self.rv(m, *dst), Tag::Obj),
            Instr::GetField { dst, obj, field } => {
                self.table.require(self.rv(m, *obj), Tag::Obj)?;
                self.table.unify(self.rv(m, *dst), self.field_vars[field.index()])
            }
            Instr::PutField { obj, field, src } => {
                self.table.require(self.rv(m, *obj), Tag::Obj)?;
                self.table.unify(self.rv(m, *src), self.field_vars[field.index()])
            }
            Instr::GetGlobal { dst, global } => {
                self.table.unify(self.rv(m, *dst), self.global_vars[global.index()])
            }
            Instr::PutGlobal { global, src } => {
                self.table.unify(self.rv(m, *src), self.global_vars[global.index()])
            }
            Instr::ArrNew { dst, len } => {
                self.table.require(self.rv(m, *len), Tag::Int)?;
                let elem = self.table.fresh();
                self.table.require(self.rv(m, *dst), Tag::Array(elem))
            }
            Instr::ArrGet { dst, arr, idx } => {
                self.table.require(self.rv(m, *idx), Tag::Int)?;
                let elem = self.table.fresh();
                self.table.require(self.rv(m, *arr), Tag::Array(elem))?;
                self.table.unify(self.rv(m, *dst), elem)
            }
            Instr::ArrSet { arr, idx, src } => {
                self.table.require(self.rv(m, *idx), Tag::Int)?;
                let elem = self.table.fresh();
                self.table.require(self.rv(m, *arr), Tag::Array(elem))?;
                self.table.unify(self.rv(m, *src), elem)
            }
            Instr::ArrLen { dst, arr } => {
                let elem = self.table.fresh();
                self.table.require(self.rv(m, *arr), Tag::Array(elem))?;
                self.table.require(self.rv(m, *dst), Tag::Int)
            }
            Instr::InstanceOf { dst, obj, .. } => {
                self.table.require(self.rv(m, *obj), Tag::AnyRef)?;
                self.table.require(self.rv(m, *dst), Tag::Int)
            }
            Instr::Branch { cond, lhs, rhs, .. } => match cond {
                Cond::Eq | Cond::Ne => self.table.unify(self.rv(m, *lhs), self.rv(m, *rhs)),
                _ => {
                    self.table.require(self.rv(m, *lhs), Tag::Int)?;
                    self.table.require(self.rv(m, *rhs), Tag::Int)
                }
            },
            Instr::CallStatic { dst, callee, args, .. } => {
                let _ = at;
                for (k, a) in args.iter().enumerate() {
                    let pv = self.reg_vars[callee.index()][k];
                    self.table.unify(self.reg_vars[m.index()][a.index()], pv)?;
                }
                if let Some(d) = dst {
                    let rv = self.ret_vars[callee.index()];
                    self.table.unify(self.reg_vars[m.index()][d.index()], rv)?;
                }
                Ok(())
            }
            Instr::CallVirtual { dst, selector, recv, args, .. } => {
                self.table.require(self.rv(m, *recv), Tag::Obj)?;
                for (k, a) in args.iter().enumerate() {
                    let pv = self.selector_param_vars[selector.index()][k];
                    self.table.unify(self.reg_vars[m.index()][a.index()], pv)?;
                }
                if let Some(d) = dst {
                    let rv = self.selector_ret_vars[selector.index()];
                    self.table.unify(self.reg_vars[m.index()][d.index()], rv)?;
                }
                Ok(())
            }
            Instr::Return { src } => {
                if let Some(r) = src {
                    self.table
                        .unify(self.rv(m, *r), self.ret_vars[m.index()])?;
                }
                Ok(())
            }
            Instr::GuardClass { recv, .. } | Instr::GuardMethod { recv, .. } => {
                self.table.require(self.rv(m, *recv), Tag::Obj)
            }
        }
    }
}

/// Flow-sensitive definite assignment: every register is written on all
/// paths before any read. Parameters count as written.
fn definite_assignment(program: &Program, mid: MethodId) -> Result<(), TypeError> {
    let m = program.method(mid);
    let body = m.body();
    let n = body.len();
    let nregs = m.num_regs() as usize;
    let params = m.total_args() as usize;

    // defined[i] = set of registers definitely assigned at entry to i.
    // Forward dataflow; meet = intersection; top (unvisited) = all-defined.
    let full: Vec<bool> = vec![true; nregs];
    let mut entry: Vec<Option<Vec<bool>>> = vec![None; n];
    let mut start = vec![false; nregs];
    for s in start.iter_mut().take(params) {
        *s = true;
    }
    if n == 0 {
        return Ok(());
    }
    entry[0] = Some(start);
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        let mut state = entry[i].clone().unwrap_or_else(|| full.clone());
        // Uses must be defined.
        let (uses, def) = uses_and_def(&body[i]);
        for u in uses {
            if !state[u.index()] {
                return Err(TypeError::MaybeUninitialised { method: mid, at: i, reg: u });
            }
        }
        if let Some(d) = def {
            state[d.index()] = true;
        }
        for s in successors(&body[i], i, n) {
            let merged = match &entry[s] {
                None => state.clone(),
                Some(prev) => prev
                    .iter()
                    .zip(state.iter())
                    .map(|(&a, &b)| a && b)
                    .collect(),
            };
            if entry[s].as_ref() != Some(&merged) {
                entry[s] = Some(merged);
                work.push(s);
            }
        }
    }
    Ok(())
}

fn successors(instr: &Instr, i: usize, n: usize) -> Vec<usize> {
    match instr {
        Instr::Return { .. } => vec![],
        Instr::Jump { target } => vec![*target as usize],
        Instr::Branch { target, .. }
        | Instr::GuardClass { else_target: target, .. }
        | Instr::GuardMethod { else_target: target, .. } => {
            let mut v = vec![*target as usize];
            if i + 1 < n {
                v.push(i + 1);
            }
            v
        }
        _ => {
            if i + 1 < n {
                vec![i + 1]
            } else {
                vec![]
            }
        }
    }
}

fn uses_and_def(instr: &Instr) -> (Vec<Reg>, Option<Reg>) {
    match instr {
        Instr::Const { dst, .. } | Instr::ConstNull { dst } => (vec![], Some(*dst)),
        Instr::Move { dst, src } => (vec![*src], Some(*dst)),
        Instr::Bin { dst, lhs, rhs, .. } => (vec![*lhs, *rhs], Some(*dst)),
        Instr::Work { .. } | Instr::Jump { .. } => (vec![], None),
        Instr::New { dst, .. } => (vec![], Some(*dst)),
        Instr::GetField { dst, obj, .. } => (vec![*obj], Some(*dst)),
        Instr::PutField { obj, src, .. } => (vec![*obj, *src], None),
        Instr::GetGlobal { dst, .. } => (vec![], Some(*dst)),
        Instr::PutGlobal { src, .. } => (vec![*src], None),
        Instr::ArrNew { dst, len } => (vec![*len], Some(*dst)),
        Instr::ArrGet { dst, arr, idx } => (vec![*arr, *idx], Some(*dst)),
        Instr::ArrSet { arr, idx, src } => (vec![*arr, *idx, *src], None),
        Instr::ArrLen { dst, arr } => (vec![*arr], Some(*dst)),
        Instr::InstanceOf { dst, obj, .. } => (vec![*obj], Some(*dst)),
        Instr::Branch { lhs, rhs, .. } => (vec![*lhs, *rhs], None),
        Instr::CallStatic { dst, args, .. } => (args.clone(), *dst),
        Instr::CallVirtual { dst, recv, args, .. } => {
            let mut u = vec![*recv];
            u.extend_from_slice(args);
            (u, *dst)
        }
        Instr::Return { src } => (src.iter().copied().collect(), None),
        Instr::GuardClass { recv, .. } | Instr::GuardMethod { recv, .. } => (vec![*recv], None),
    }
}

#[cfg(test)]
mod tests;
