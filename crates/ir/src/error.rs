//! IR construction and validation errors.

use crate::ids::{ClassId, MethodId, Reg, SelectorId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`Program`](crate::Program).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IrError {
    /// A branch target is outside the method body.
    BranchOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Instruction index of the branch.
        at: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// An instruction references a register ≥ the method's register count.
    RegisterOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Instruction index.
        at: usize,
        /// The out-of-range register.
        reg: Reg,
    },
    /// A method body does not end every path with a return (specifically,
    /// the final instruction can fall off the end).
    MissingReturn {
        /// Offending method.
        method: MethodId,
    },
    /// A call passes the wrong number of arguments for its callee.
    ArityMismatch {
        /// Method containing the call.
        method: MethodId,
        /// Instruction index of the call.
        at: usize,
        /// Arguments expected by the callee/selector.
        expected: u16,
        /// Arguments supplied.
        supplied: u16,
    },
    /// A virtual method is installed under a selector whose arity differs
    /// from the method's.
    SelectorArityMismatch {
        /// The selector.
        selector: SelectorId,
        /// The method installed under it.
        method: MethodId,
    },
    /// A label was used but never bound.
    UnboundLabel {
        /// Method being built.
        method: String,
    },
    /// A class was declared with a superclass from a different builder or an
    /// otherwise unknown id.
    UnknownClass {
        /// The unknown id.
        class: ClassId,
    },
    /// The program entry point is not a parameterless static method.
    BadEntryPoint {
        /// The offending entry method.
        method: MethodId,
    },
    /// Two classes with the same name were declared (names must be unique to
    /// keep diagnostics unambiguous).
    DuplicateClassName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BranchOutOfRange { method, at, target } => write!(
                f,
                "branch at {method}:{at} targets instruction {target} outside the body"
            ),
            IrError::RegisterOutOfRange { method, at, reg } => write!(
                f,
                "instruction {method}:{at} references register {reg} beyond the declared count"
            ),
            IrError::MissingReturn { method } => {
                write!(f, "method {method} can fall off the end of its body")
            }
            IrError::ArityMismatch { method, at, expected, supplied } => write!(
                f,
                "call at {method}:{at} supplies {supplied} arguments, callee expects {expected}"
            ),
            IrError::SelectorArityMismatch { selector, method } => write!(
                f,
                "method {method} installed under selector {selector} with mismatched arity"
            ),
            IrError::UnboundLabel { method } => {
                write!(f, "method `{method}` uses a label that was never bound")
            }
            IrError::UnknownClass { class } => write!(f, "unknown class id {class}"),
            IrError::BadEntryPoint { method } => write!(
                f,
                "entry point {method} must be a parameterless static method"
            ),
            IrError::DuplicateClassName { name } => {
                write!(f, "duplicate class name `{name}`")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IrError::ArityMismatch {
            method: MethodId(1),
            at: 4,
            expected: 2,
            supplied: 3,
        };
        let s = e.to_string();
        assert!(s.contains("m1:4"));
        assert!(s.contains("3 arguments"));
    }
}
