//! Pre-decoded instruction form and the static superinstruction fusion
//! table.
//!
//! The interpreter historically re-examined each [`Instr`] on every
//! execution: matching on the enum, chasing [`FieldId`]/[`ClassId`]
//! lookups through the program tables, and (worst of all) cloning the
//! instruction — including its argument `Vec` for calls — per step. The
//! pre-decode pass lowers a method body once into a flat [`DecodedOp`]
//! array in which every operand is resolved up front: register numbers as
//! raw `u16`s, field offsets and class layout sizes pre-looked-up, call
//! argument lists as owned boxed slices, branch targets absolute. This is
//! the idiom of pre-decoded/threaded interpreters ("An Attempt to Catch Up
//! with JIT Compilers", Poirier et al.): pay decode cost once per
//! installed code version, not once per executed instruction.
//!
//! Two properties are load-bearing for the VM's bit-identity guarantee
//! (DESIGN.md §13):
//!
//! * **Decoding is lossless.** Every decoded op retains the source-level
//!   identifiers (field, class, site, selector) next to the resolved
//!   values, so [`encode_op`] is a strict inverse of [`decode_op`]:
//!   `encode(decode(body)) == body` instruction for instruction. The
//!   `proptest_decode` suite leans on this.
//! * **Decoding is 1:1.** `decode_body` emits exactly one [`DecodedOp`]
//!   per source instruction at the same index, so *decoded pc == source
//!   pc*. Branch targets, OSR anchor pcs, inline-map indices and sample
//!   attribution all carry over unchanged — no remapping layer exists to
//!   get wrong.
//!
//! Superinstruction fusion ([`fusion_plan`]) follows the same discipline:
//! a fused pair at pc `i` is an *execution fast path*, not a layout
//! change. The op at `i + 1` keeps its plain decoded form, so a branch
//! landing between the halves — or an OSR entry on the second half —
//! executes it exactly as unfused code would.

use crate::ids::{ClassId, FieldId, GlobalId, MethodId, Reg, SelectorId, SiteIdx};
use crate::instr::{BinOp, Cond, Instr};
use crate::program::Program;

/// One pre-decoded instruction: the execution-ready mirror of [`Instr`].
///
/// Register operands are raw `u16` indices (what the interpreter actually
/// indexes frames with); memory operands carry both the resolved value
/// (`offset`, `layout`) **and** the id it was resolved from, keeping
/// [`encode_op`] exact.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DecodedOp {
    /// `dst = value`.
    Const { dst: u16, value: i64 },
    /// `dst = null`.
    ConstNull { dst: u16 },
    /// `dst = src`.
    Move { dst: u16, src: u16 },
    /// `dst = lhs op rhs`.
    Bin { op: BinOp, dst: u16, lhs: u16, rhs: u16 },
    /// Abstract straight-line work of `units` instructions.
    Work { units: u32 },
    /// `dst = new class`; `layout` is the class's pre-looked-up layout size.
    New { dst: u16, class: ClassId, layout: u32 },
    /// `dst = obj.field`; `offset` is the field's pre-looked-up offset.
    GetField { dst: u16, obj: u16, field: FieldId, offset: u32 },
    /// `obj.field = src`; `offset` is the field's pre-looked-up offset.
    PutField { obj: u16, field: FieldId, offset: u32, src: u16 },
    /// `dst = global`.
    GetGlobal { dst: u16, global: GlobalId },
    /// `global = src`.
    PutGlobal { global: GlobalId, src: u16 },
    /// `dst = new array[len]`.
    ArrNew { dst: u16, len: u16 },
    /// `dst = arr[idx]`.
    ArrGet { dst: u16, arr: u16, idx: u16 },
    /// `arr[idx] = src`.
    ArrSet { arr: u16, idx: u16, src: u16 },
    /// `dst = arr.length`.
    ArrLen { dst: u16, arr: u16 },
    /// `dst = obj instanceof class`.
    InstanceOf { dst: u16, obj: u16, class: ClassId },
    /// Unconditional jump to absolute index `target`.
    Jump { target: u32 },
    /// Conditional jump to absolute index `target`.
    Branch { cond: Cond, lhs: u16, rhs: u16, target: u32 },
    /// Static call; `args` is an owned flat operand list.
    CallStatic { site: SiteIdx, dst: Option<u16>, callee: MethodId, args: Box<[u16]> },
    /// Virtual call; `args` excludes the receiver, as in [`Instr`].
    CallVirtual {
        site: SiteIdx,
        dst: Option<u16>,
        selector: SelectorId,
        recv: u16,
        args: Box<[u16]>,
    },
    /// Return, optionally with a value.
    Return { src: Option<u16> },
    /// Class-test guard; `else_target` is absolute.
    GuardClass { recv: u16, class: ClassId, else_target: u32 },
    /// Method-test guard; `else_target` is absolute.
    GuardMethod { recv: u16, selector: SelectorId, target: MethodId, else_target: u32 },
}

/// Lowers one instruction, resolving field offsets and class layouts
/// against `program`.
pub fn decode_op(instr: &Instr, program: &Program) -> DecodedOp {
    let r = |reg: Reg| reg.0;
    match instr {
        Instr::Const { dst, value } => DecodedOp::Const { dst: r(*dst), value: *value },
        Instr::ConstNull { dst } => DecodedOp::ConstNull { dst: r(*dst) },
        Instr::Move { dst, src } => DecodedOp::Move { dst: r(*dst), src: r(*src) },
        Instr::Bin { op, dst, lhs, rhs } => {
            DecodedOp::Bin { op: *op, dst: r(*dst), lhs: r(*lhs), rhs: r(*rhs) }
        }
        Instr::Work { units } => DecodedOp::Work { units: *units },
        Instr::New { dst, class } => DecodedOp::New {
            dst: r(*dst),
            class: *class,
            layout: program.class(*class).layout_size(),
        },
        Instr::GetField { dst, obj, field } => DecodedOp::GetField {
            dst: r(*dst),
            obj: r(*obj),
            field: *field,
            offset: program.field(*field).offset(),
        },
        Instr::PutField { obj, field, src } => DecodedOp::PutField {
            obj: r(*obj),
            field: *field,
            offset: program.field(*field).offset(),
            src: r(*src),
        },
        Instr::GetGlobal { dst, global } => {
            DecodedOp::GetGlobal { dst: r(*dst), global: *global }
        }
        Instr::PutGlobal { global, src } => {
            DecodedOp::PutGlobal { global: *global, src: r(*src) }
        }
        Instr::ArrNew { dst, len } => DecodedOp::ArrNew { dst: r(*dst), len: r(*len) },
        Instr::ArrGet { dst, arr, idx } => {
            DecodedOp::ArrGet { dst: r(*dst), arr: r(*arr), idx: r(*idx) }
        }
        Instr::ArrSet { arr, idx, src } => {
            DecodedOp::ArrSet { arr: r(*arr), idx: r(*idx), src: r(*src) }
        }
        Instr::ArrLen { dst, arr } => DecodedOp::ArrLen { dst: r(*dst), arr: r(*arr) },
        Instr::InstanceOf { dst, obj, class } => {
            DecodedOp::InstanceOf { dst: r(*dst), obj: r(*obj), class: *class }
        }
        Instr::Jump { target } => DecodedOp::Jump { target: *target },
        Instr::Branch { cond, lhs, rhs, target } => DecodedOp::Branch {
            cond: *cond,
            lhs: r(*lhs),
            rhs: r(*rhs),
            target: *target,
        },
        Instr::CallStatic { site, dst, callee, args } => DecodedOp::CallStatic {
            site: *site,
            dst: dst.map(|d| d.0),
            callee: *callee,
            args: args.iter().map(|a| a.0).collect(),
        },
        Instr::CallVirtual { site, dst, selector, recv, args } => DecodedOp::CallVirtual {
            site: *site,
            dst: dst.map(|d| d.0),
            selector: *selector,
            recv: r(*recv),
            args: args.iter().map(|a| a.0).collect(),
        },
        Instr::Return { src } => DecodedOp::Return { src: src.map(|s| s.0) },
        Instr::GuardClass { recv, class, else_target } => DecodedOp::GuardClass {
            recv: r(*recv),
            class: *class,
            else_target: *else_target,
        },
        Instr::GuardMethod { recv, selector, target, else_target } => DecodedOp::GuardMethod {
            recv: r(*recv),
            selector: *selector,
            target: *target,
            else_target: *else_target,
        },
    }
}

/// Lowers a whole body. The result is exactly `body.len()` ops with
/// *decoded pc == source pc* (see the module docs).
pub fn decode_body(body: &[Instr], program: &Program) -> Vec<DecodedOp> {
    body.iter().map(|i| decode_op(i, program)).collect()
}

/// The exact inverse of [`decode_op`].
pub fn encode_op(op: &DecodedOp) -> Instr {
    let r = |reg: u16| Reg(reg);
    match op {
        DecodedOp::Const { dst, value } => Instr::Const { dst: r(*dst), value: *value },
        DecodedOp::ConstNull { dst } => Instr::ConstNull { dst: r(*dst) },
        DecodedOp::Move { dst, src } => Instr::Move { dst: r(*dst), src: r(*src) },
        DecodedOp::Bin { op, dst, lhs, rhs } => {
            Instr::Bin { op: *op, dst: r(*dst), lhs: r(*lhs), rhs: r(*rhs) }
        }
        DecodedOp::Work { units } => Instr::Work { units: *units },
        DecodedOp::New { dst, class, .. } => Instr::New { dst: r(*dst), class: *class },
        DecodedOp::GetField { dst, obj, field, .. } => {
            Instr::GetField { dst: r(*dst), obj: r(*obj), field: *field }
        }
        DecodedOp::PutField { obj, field, src, .. } => {
            Instr::PutField { obj: r(*obj), field: *field, src: r(*src) }
        }
        DecodedOp::GetGlobal { dst, global } => {
            Instr::GetGlobal { dst: r(*dst), global: *global }
        }
        DecodedOp::PutGlobal { global, src } => {
            Instr::PutGlobal { global: *global, src: r(*src) }
        }
        DecodedOp::ArrNew { dst, len } => Instr::ArrNew { dst: r(*dst), len: r(*len) },
        DecodedOp::ArrGet { dst, arr, idx } => {
            Instr::ArrGet { dst: r(*dst), arr: r(*arr), idx: r(*idx) }
        }
        DecodedOp::ArrSet { arr, idx, src } => {
            Instr::ArrSet { arr: r(*arr), idx: r(*idx), src: r(*src) }
        }
        DecodedOp::ArrLen { dst, arr } => Instr::ArrLen { dst: r(*dst), arr: r(*arr) },
        DecodedOp::InstanceOf { dst, obj, class } => {
            Instr::InstanceOf { dst: r(*dst), obj: r(*obj), class: *class }
        }
        DecodedOp::Jump { target } => Instr::Jump { target: *target },
        DecodedOp::Branch { cond, lhs, rhs, target } => Instr::Branch {
            cond: *cond,
            lhs: r(*lhs),
            rhs: r(*rhs),
            target: *target,
        },
        DecodedOp::CallStatic { site, dst, callee, args } => Instr::CallStatic {
            site: *site,
            dst: dst.map(Reg),
            callee: *callee,
            args: args.iter().map(|&a| Reg(a)).collect(),
        },
        DecodedOp::CallVirtual { site, dst, selector, recv, args } => Instr::CallVirtual {
            site: *site,
            dst: dst.map(Reg),
            selector: *selector,
            recv: r(*recv),
            args: args.iter().map(|&a| Reg(a)).collect(),
        },
        DecodedOp::Return { src } => Instr::Return { src: src.map(Reg) },
        DecodedOp::GuardClass { recv, class, else_target } => Instr::GuardClass {
            recv: r(*recv),
            class: *class,
            else_target: *else_target,
        },
        DecodedOp::GuardMethod { recv, selector, target, else_target } => Instr::GuardMethod {
            recv: r(*recv),
            selector: *selector,
            target: *target,
            else_target: *else_target,
        },
    }
}

/// The exact inverse of [`decode_body`].
pub fn encode_body(ops: &[DecodedOp]) -> Vec<Instr> {
    ops.iter().map(encode_op).collect()
}

/// The superinstructions the static fusion table knows how to build.
///
/// The pairs are the hottest adjacent opcode sequences of the eight suite
/// workloads (constant feeding an ALU op, field load feeding an ALU op,
/// ALU op or constant feeding a compare-and-branch). The *first* op of a
/// pair is always straight-line (it can neither branch, call, return, nor
/// raise an OSR request), which is what makes fusing the interpreter's
/// per-instruction event checks across the boundary sound — see
/// DESIGN.md §13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FusedKind {
    /// `Const` + `Bin`.
    ConstBin,
    /// `Move` + `Bin`.
    MoveBin,
    /// `GetField` + `Bin`.
    GetFieldBin,
    /// `Bin` + `Branch` (compute, compare-and-branch).
    BinBranch,
    /// `Const` + `Branch` (immediate compare-and-branch).
    ConstBranch,
}

/// The static fusion table: which adjacent pair, if any, `a; b` fuses
/// into. Pure structure — independent of operands, cost model and
/// compilation level.
pub fn fused_kind(a: &DecodedOp, b: &DecodedOp) -> Option<FusedKind> {
    match (a, b) {
        (DecodedOp::Const { .. }, DecodedOp::Bin { .. }) => Some(FusedKind::ConstBin),
        (DecodedOp::Move { .. }, DecodedOp::Bin { .. }) => Some(FusedKind::MoveBin),
        (DecodedOp::GetField { .. }, DecodedOp::Bin { .. }) => Some(FusedKind::GetFieldBin),
        (DecodedOp::Bin { .. }, DecodedOp::Branch { .. }) => Some(FusedKind::BinBranch),
        (DecodedOp::Const { .. }, DecodedOp::Branch { .. }) => Some(FusedKind::ConstBranch),
        _ => None,
    }
}

/// Per-pc fusion plan for a decoded body: `plan[i]` is the
/// superinstruction starting at `i`, if the table fuses `ops[i]` with
/// `ops[i + 1]`. Because fusion never changes layout, overlapping entries
/// (e.g. `Bin Bin Branch` fusing at both 0 and 1) are fine: whichever pc
/// control actually reaches uses its own entry.
pub fn fusion_plan(ops: &[DecodedOp]) -> Vec<Option<FusedKind>> {
    (0..ops.len())
        .map(|i| ops.get(i + 1).and_then(|b| fused_kind(&ops[i], b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample_program() -> (Program, MethodId) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let point = b.class("Point", Some(obj));
        let x = b.field(point, "x");
        let main = {
            let mut m = b.static_method("main", 0);
            let p = m.fresh_reg();
            let acc = m.fresh_reg();
            let one = m.fresh_reg();
            m.new_obj(p, point);
            m.const_int(acc, 0);
            m.const_int(one, 1);
            m.put_field(p, x, acc);
            let top = m.label();
            m.bind(top);
            m.get_field(acc, p, x);
            m.bin(BinOp::Add, acc, acc, one);
            m.put_field(p, x, acc);
            let limit = m.fresh_reg();
            m.const_int(limit, 10);
            m.branch(Cond::Lt, acc, limit, top);
            m.ret(Some(acc));
            m.finish()
        };
        let program = b.finish(main).expect("valid program");
        (program, main)
    }

    #[test]
    fn decode_encode_is_identity() {
        let (program, main) = sample_program();
        let body = program.method(main).body();
        let ops = decode_body(body, &program);
        assert_eq!(ops.len(), body.len(), "decode must be 1:1");
        assert_eq!(encode_body(&ops), body, "encode must invert decode");
    }

    #[test]
    fn decode_resolves_layout_and_offsets() {
        let (program, main) = sample_program();
        let ops = decode_body(program.method(main).body(), &program);
        let mut saw_new = false;
        let mut saw_field = false;
        for op in &ops {
            match op {
                DecodedOp::New { class, layout, .. } => {
                    assert_eq!(*layout, program.class(*class).layout_size());
                    saw_new = true;
                }
                DecodedOp::GetField { field, offset, .. }
                | DecodedOp::PutField { field, offset, .. } => {
                    assert_eq!(*offset, program.field(*field).offset());
                    saw_field = true;
                }
                _ => {}
            }
        }
        assert!(saw_new && saw_field);
    }

    #[test]
    fn fusion_table_matches_documented_pairs() {
        let c = DecodedOp::Const { dst: 0, value: 1 };
        let b = DecodedOp::Bin { op: BinOp::Add, dst: 0, lhs: 0, rhs: 1 };
        let br = DecodedOp::Branch { cond: Cond::Lt, lhs: 0, rhs: 1, target: 0 };
        let g = DecodedOp::GetField { dst: 0, obj: 1, field: FieldId::from_index(0), offset: 0 };
        let m = DecodedOp::Move { dst: 0, src: 1 };
        assert_eq!(fused_kind(&c, &b), Some(FusedKind::ConstBin));
        assert_eq!(fused_kind(&m, &b), Some(FusedKind::MoveBin));
        assert_eq!(fused_kind(&g, &b), Some(FusedKind::GetFieldBin));
        assert_eq!(fused_kind(&b, &br), Some(FusedKind::BinBranch));
        assert_eq!(fused_kind(&c, &br), Some(FusedKind::ConstBranch));
        // Control flow, calls and effects never lead a pair.
        assert_eq!(fused_kind(&br, &b), None);
        assert_eq!(fused_kind(&DecodedOp::Return { src: None }, &b), None);
        assert_eq!(fused_kind(&b, &c), None);
    }

    #[test]
    fn fusion_plan_is_per_pc_and_allows_overlap() {
        let b = DecodedOp::Bin { op: BinOp::Add, dst: 0, lhs: 0, rhs: 1 };
        let br = DecodedOp::Branch { cond: Cond::Lt, lhs: 0, rhs: 1, target: 0 };
        let ops = vec![b.clone(), b, br];
        let plan = fusion_plan(&ops);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0], None, "Bin+Bin is not in the table");
        assert_eq!(plan[1], Some(FusedKind::BinBranch));
        assert_eq!(plan[2], None, "the tail never starts a pair");
    }
}
