//! Method definitions.

use crate::ids::{ClassId, MethodId, Reg, SelectorId, SiteIdx};
use crate::instr::Instr;
use crate::size::{self, SizeClass};

/// Whether a method is a static (class) method or a virtual (instance)
/// method.
///
/// The distinction matters to two of the paper's adaptive policies:
/// *Parameterless Methods* treats the receiver as an implicit parameter, and
/// *Class Methods* terminates trace collection at the first static method
/// because no `this` state flows through it (Section 4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MethodKind {
    /// A static method: no receiver; dispatched directly.
    Static,
    /// An instance method: register 0 is the receiver; dispatched virtually
    /// through a selector unless the compiler can bind it statically.
    Virtual {
        /// The class that declares this implementation.
        owner: ClassId,
        /// The selector under which the implementation is installed.
        selector: SelectorId,
    },
}

impl MethodKind {
    /// Returns `true` for static (class) methods.
    pub fn is_static(&self) -> bool {
        matches!(self, MethodKind::Static)
    }
}

/// A method definition: signature, body and derived size information.
#[derive(Clone, Debug)]
pub struct MethodDef {
    pub(crate) id: MethodId,
    pub(crate) name: String,
    pub(crate) kind: MethodKind,
    /// Number of declared parameters, excluding the receiver.
    pub(crate) arity: u16,
    /// Total registers used by the body (≥ `total_args()`).
    pub(crate) num_regs: u16,
    pub(crate) body: Vec<Instr>,
    /// Number of call sites in the body (site indices are `0..num_sites`).
    pub(crate) num_sites: u16,
    /// Cached size estimate in abstract instruction units.
    pub(crate) size_estimate: u32,
}

impl MethodDef {
    /// Returns this method's id.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// Returns the method name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns whether the method is static or virtual.
    pub fn kind(&self) -> MethodKind {
        self.kind
    }

    /// Returns the number of declared parameters, excluding the receiver.
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// Returns the number of incoming argument registers, including the
    /// receiver for virtual methods.
    pub fn total_args(&self) -> u16 {
        match self.kind {
            MethodKind::Static => self.arity,
            MethodKind::Virtual { .. } => self.arity + 1,
        }
    }

    /// Returns the number of registers the body uses.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Returns the instruction sequence of the body.
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// Returns the number of call sites in the body.
    pub fn num_sites(&self) -> u16 {
        self.num_sites
    }

    /// Returns `true` if the method passes no explicit parameters.
    ///
    /// The receiver does **not** count as a parameter here, mirroring the
    /// paper's *Parameterless Methods* heuristic ("there are certainly
    /// exceptions, such as global variables and the `this` parameter").
    pub fn is_parameterless(&self) -> bool {
        self.arity == 0
    }

    /// Returns the method's size estimate in abstract instruction units.
    ///
    /// This is the quantity Jikes RVM compares against multiples of the call
    /// sequence size to classify methods as tiny/small/medium/large.
    pub fn size_estimate(&self) -> u32 {
        self.size_estimate
    }

    /// Returns the method's inlining size class (paper Section 3.1).
    pub fn size_class(&self) -> SizeClass {
        size::classify(self.size_estimate)
    }

    /// Returns the instruction index of the call instruction with site index
    /// `site`, or `None` if out of range.
    pub fn site_instr_index(&self, site: SiteIdx) -> Option<usize> {
        self.body
            .iter()
            .position(|i| i.call_site() == Some(site))
    }

    /// Iterates over `(site, instruction)` pairs for every call site in the
    /// body, in instruction order.
    pub fn call_sites(&self) -> impl Iterator<Item = (SiteIdx, &Instr)> + '_ {
        self.body
            .iter()
            .filter_map(|i| i.call_site().map(|s| (s, i)))
    }

    /// Returns register 0 if this is a virtual method (the receiver).
    pub fn receiver_reg(&self) -> Option<Reg> {
        match self.kind {
            MethodKind::Static => None,
            MethodKind::Virtual { .. } => Some(Reg(0)),
        }
    }
}
