use super::*;
use crate::builder::ProgramBuilder;
use crate::instr::BinOp;

fn verify_build(
    build: impl FnOnce(&mut ProgramBuilder) -> MethodId,
) -> Result<TypeReport, TypeError> {
    let mut b = ProgramBuilder::new();
    let main = build(&mut b);
    let p = b.finish(main).expect("structurally valid");
    verify(&p)
}

#[test]
fn accepts_simple_arithmetic() {
    let report = verify_build(|b| {
        let mut m = b.static_method("main", 0);
        let r = m.fresh_reg();
        let s = m.fresh_reg();
        m.const_int(r, 1);
        m.const_int(s, 2);
        m.bin(BinOp::Add, r, r, s);
        m.ret(Some(r));
        m.finish()
    })
    .expect("verifies");
    assert_eq!(report.methods[0].1, Some(Shape::Int));
}

#[test]
fn rejects_arithmetic_on_references() {
    let err = verify_build(|b| {
        let a = b.class("A", None);
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.new_obj(o, a);
        m.const_int(r, 1);
        m.bin(BinOp::Add, r, r, o);
        m.ret(None);
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::Mismatch { .. }), "{err}");
}

#[test]
fn rejects_register_shape_reuse() {
    // Flow-insensitive: one register cannot hold both an int and an object.
    let err = verify_build(|b| {
        let a = b.class("A", None);
        let mut m = b.static_method("main", 0);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.new_obj(r, a);
        m.ret(None);
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::Mismatch { .. }));
}

#[test]
fn infers_parameter_types_through_calls() {
    let report = verify_build(|b| {
        let a = b.class("A", None);
        let f = b.field(a, "x");
        let callee = {
            let mut m = b.static_method("takesObj", 1);
            let r = m.fresh_reg();
            m.get_field(r, m.param(0), f);
            m.ret(Some(r));
            m.finish()
        };
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.new_obj(o, a);
        m.call_static(Some(r), callee, &[o]);
        m.ret(Some(r));
        m.finish()
    })
    .expect("verifies");
    // takesObj's parameter inferred as an object; field x flows to int? No:
    // x is only read, so it stays unknown, and the return shares its shape.
    assert_eq!(report.methods[0].0, vec![Shape::Obj]);
}

#[test]
fn field_types_unify_across_methods() {
    let err = verify_build(|b| {
        let a = b.class("A", None);
        let f = b.field(a, "x");
        // One method stores an int, another stores an object.
        {
            let mut m = b.static_method("storeInt", 1);
            let o = m.fresh_reg();
            m.new_obj(o, a);
            m.put_field(o, f, m.param(0)); // param is Int by later use
            let i = m.fresh_reg();
            m.const_int(i, 1);
            m.bin(BinOp::Add, i, i, m.param(0));
            m.ret(None);
            m.finish();
        }
        {
            let mut m = b.static_method("storeObj", 0);
            let o = m.fresh_reg();
            m.new_obj(o, a);
            m.put_field(o, f, o);
            m.ret(None);
            m.finish();
        }
        let mut m = b.static_method("main", 0);
        m.ret(None);
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::Mismatch { .. }));
}

#[test]
fn arrays_are_homogeneous() {
    let err = verify_build(|b| {
        let a = b.class("A", None);
        let mut m = b.static_method("main", 0);
        let n = m.fresh_reg();
        let arr = m.fresh_reg();
        let o = m.fresh_reg();
        let i = m.fresh_reg();
        let zero = m.fresh_reg();
        m.const_int(n, 2);
        m.arr_new(arr, n);
        m.new_obj(o, a);
        m.const_int(zero, 0);
        m.arr_set(arr, zero, o); // object element...
        m.arr_get(i, arr, zero);
        m.bin(BinOp::Add, i, i, zero); // ...used as int
        m.ret(None);
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::Mismatch { .. }));
}

#[test]
fn null_is_compatible_with_any_reference() {
    verify_build(|b| {
        let a = b.class("A", None);
        let f = b.field(a, "next");
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        let nil = m.fresh_reg();
        m.new_obj(o, a);
        m.const_null(nil);
        m.put_field(o, f, nil);
        m.put_field(o, f, o);
        m.ret(None);
        m.finish()
    })
    .expect("null unifies with object references");
}

#[test]
fn uninitialised_on_one_path_is_rejected() {
    let err = verify_build(|b| {
        let mut m = b.static_method("main", 0);
        let c = m.fresh_reg();
        let r = m.fresh_reg();
        let join = m.label();
        m.const_int(c, 0);
        m.branch(crate::instr::Cond::Eq, c, c, join); // may skip the write
        m.const_int(r, 1);
        m.bind(join);
        m.bin(BinOp::Add, c, c, r); // r undefined on the taken path
        m.ret(None);
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::MaybeUninitialised { .. }), "{err}");
}

#[test]
fn loop_carried_definitions_are_accepted() {
    verify_build(|b| {
        let mut m = b.static_method("main", 0);
        let i = m.fresh_reg();
        let one = m.fresh_reg();
        let n = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(one, 1);
        m.const_int(n, 5);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(crate::instr::Cond::Ge, i, n, out);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(i));
        m.finish()
    })
    .expect("loop verifies");
}

#[test]
fn inconsistent_returns_rejected() {
    let err = verify_build(|b| {
        let mut m = b.static_method("main", 0);
        let c = m.fresh_reg();
        let v = m.label();
        m.const_int(c, 0);
        m.branch(crate::instr::Cond::Eq, c, c, v);
        m.ret(None);
        m.bind(v);
        m.ret(Some(c));
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::InconsistentReturns { .. }));
}

#[test]
fn void_result_use_rejected() {
    let err = verify_build(|b| {
        let void = {
            let mut m = b.static_method("void", 0);
            m.ret(None);
            m.finish()
        };
        let mut m = b.static_method("main", 0);
        let r = m.fresh_reg();
        m.call_static(Some(r), void, &[]);
        m.ret(None);
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::VoidResultUsed { .. }));
}

#[test]
fn selector_parameter_conflict_rejected() {
    let err = verify_build(|b| {
        let sel = b.selector("f", 1);
        let a = b.class("A", None);
        let c2 = b.class("B", Some(a));
        {
            let mut m = b.virtual_method("A.f", a, sel);
            let r = m.fresh_reg();
            m.const_int(r, 1);
            m.bin(BinOp::Add, r, r, m.param(0)); // param: int
            m.ret(Some(r));
            m.finish();
        }
        {
            let mut m = b.virtual_method("B.f", c2, sel);
            let r = m.fresh_reg();
            m.instance_of(r, m.param(0), a); // param: reference
            m.ret(Some(r));
            m.finish();
        }
        let mut m = b.static_method("main", 0);
        m.ret(None);
        m.finish()
    })
    .unwrap_err();
    assert!(matches!(err, TypeError::Mismatch { .. }), "{err}");
}

#[test]
fn error_display_is_informative() {
    let e = TypeError::Mismatch {
        method: MethodId::from_index(2),
        at: 7,
        expected: Shape::Int,
        found: Shape::Obj,
    };
    assert!(e.to_string().contains("m2"));
    assert!(e.to_string().contains("int"));
}
