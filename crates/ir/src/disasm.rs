//! Human-readable disassembly of method bodies; useful in tests, examples
//! and when debugging the inliner's output.

use crate::instr::Instr;
use crate::method::MethodDef;
use crate::program::Program;
use std::fmt::Write as _;

/// Renders `body` as one instruction per line, resolving names through
/// `program`.
///
/// Works for both source bodies (pass `program.method(id).body()`) and
/// optimizer output (any `&[Instr]`), so the inliner's transforms can be
/// inspected directly.
pub fn disassemble(program: &Program, body: &[Instr]) -> String {
    let mut out = String::new();
    for (i, instr) in body.iter().enumerate() {
        let _ = write!(out, "{i:4}: ");
        render(program, instr, &mut out);
        out.push('\n');
    }
    out
}

/// Renders a full method header plus its body.
pub fn disassemble_method(program: &Program, m: &MethodDef) -> String {
    let kind = if m.kind().is_static() { "static" } else { "virtual" };
    let mut s = format!(
        "{} {} /{} (size {}, {})\n",
        kind,
        m.name(),
        m.arity(),
        m.size_estimate(),
        m.size_class()
    );
    s.push_str(&disassemble(program, m.body()));
    s
}

fn render(p: &Program, instr: &Instr, out: &mut String) {
    let _ = match instr {
        Instr::Const { dst, value } => write!(out, "{dst} = const {value}"),
        Instr::ConstNull { dst } => write!(out, "{dst} = null"),
        Instr::Move { dst, src } => write!(out, "{dst} = {src}"),
        Instr::Bin { op, dst, lhs, rhs } => write!(out, "{dst} = {op} {lhs}, {rhs}"),
        Instr::Work { units } => write!(out, "work {units}"),
        Instr::New { dst, class } => write!(out, "{dst} = new {}", p.class(*class).name()),
        Instr::GetField { dst, obj, field } => {
            write!(out, "{dst} = {obj}.{}", p.field(*field).name())
        }
        Instr::PutField { obj, field, src } => {
            write!(out, "{obj}.{} = {src}", p.field(*field).name())
        }
        Instr::GetGlobal { dst, global } => write!(out, "{dst} = ${}", p.global_name(*global)),
        Instr::PutGlobal { global, src } => write!(out, "${} = {src}", p.global_name(*global)),
        Instr::ArrNew { dst, len } => write!(out, "{dst} = newarray[{len}]"),
        Instr::ArrGet { dst, arr, idx } => write!(out, "{dst} = {arr}[{idx}]"),
        Instr::ArrSet { arr, idx, src } => write!(out, "{arr}[{idx}] = {src}"),
        Instr::ArrLen { dst, arr } => write!(out, "{dst} = len {arr}"),
        Instr::InstanceOf { dst, obj, class } => {
            write!(out, "{dst} = {obj} instanceof {}", p.class(*class).name())
        }
        Instr::Jump { target } => write!(out, "jump {target}"),
        Instr::Branch { cond, lhs, rhs, target } => {
            write!(out, "if {lhs} {cond} {rhs} jump {target}")
        }
        Instr::CallStatic { site, dst, callee, args } => {
            if let Some(d) = dst {
                let _ = write!(out, "{d} = ");
            }
            let _ = write!(out, "call{site} {}(", p.method(*callee).name());
            write_args(out, args);
            write!(out, ")")
        }
        Instr::CallVirtual { site, dst, selector, recv, args } => {
            if let Some(d) = dst {
                let _ = write!(out, "{d} = ");
            }
            let _ = write!(out, "vcall{site} {recv}.{}(", p.selector(*selector).name());
            write_args(out, args);
            write!(out, ")")
        }
        Instr::Return { src: Some(r) } => write!(out, "return {r}"),
        Instr::Return { src: None } => write!(out, "return"),
        Instr::GuardClass { recv, class, else_target } => write!(
            out,
            "guard {recv} is {} else jump {else_target}",
            p.class(*class).name()
        ),
        Instr::GuardMethod { recv, selector, target, else_target } => write!(
            out,
            "guard {recv}.{} dispatches {} else jump {else_target}",
            p.selector(*selector).name(),
            p.method(*target).name()
        ),
    };
}

fn write_args(out: &mut String, args: &[crate::ids::Reg]) {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{a}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn disassembles_calls_and_guards() {
        let mut b = ProgramBuilder::new();
        let sel = b.selector("go", 0);
        let a = b.class("A", None);
        let go = {
            let mut m = b.virtual_method("A.go", a, sel);
            m.ret(None);
            m.finish()
        };
        let main = {
            let mut m = b.static_method("main", 0);
            let r = m.fresh_reg();
            m.new_obj(r, a);
            m.call_virtual(None, sel, r, &[]);
            m.call_static(None, go, &[r]);
            m.ret(None);
            m.finish()
        };
        let p = b.finish(main).unwrap();
        let text = disassemble_method(&p, p.method(main));
        assert!(text.contains("vcall@0 r0.go()"), "got:\n{text}");
        assert!(text.contains("call@1 A.go(r0)"), "got:\n{text}");
        assert!(text.starts_with("static main /0"));
    }
}
