//! Minimal, dependency-free stand-in for the subset of the `proptest` API
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so the real `proptest`
//! cannot be fetched. This vendored crate implements just enough —
//! [`Strategy`] with `prop_map`/`prop_flat_map`/`prop_shuffle`, `Just`,
//! `any`, ranges and tuples/arrays as strategies, `prop::collection::vec`,
//! `prop_oneof!`, `proptest!` and the `prop_assert*` macros — to run the
//! workspace's property tests unchanged.
//! Generation is purely random (seeded, deterministic); there is no
//! shrinking. Failing cases therefore report the failing input via the
//! panic message only.

pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` (only `collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Mirror of `proptest::arbitrary::any`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// The common-imports prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Assertion macros: plain panicking assertions (no shrink-and-replay).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest! { ... }` block: each contained `#[test] fn name(pat in
/// strategy, ...) { body }` becomes a plain test that draws `cases` inputs
/// from a deterministic RNG and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg).cases; $($rest)*);
    };
    (@fns $cases:expr; $($(#[$meta:meta])* fn $name:ident ($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = $cases;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cases {
                    $crate::proptest!(@bind rng; $($args)*);
                    $body
                }
            }
        )*
    };
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $pat:pat_param in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&$strat, &mut $rng);
    };
    (@bind $rng:ident; $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&$strat, &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns 64u32; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Pair(u8, u8),
    }

    fn shape_strategy() -> impl Strategy<Value = Shape> {
        prop_oneof![
            (0u8..=0).prop_map(|_| Shape::Dot),
            any::<u8>().prop_map(Shape::Line),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 0.25f64..0.75, z in 1u16..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<i8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_work(s in shape_strategy(), pair in (any::<bool>(), 0u32..10)) {
            match s {
                Shape::Dot | Shape::Line(_) | Shape::Pair(..) => {}
            }
            prop_assert!(pair.1 < 10);
            prop_assert_ne!(pair.1, 10);
        }

        #[test]
        fn arrays_generate(a in [0u8..4, 0u8..4], bytes in any::<[u8; 2]>()) {
            prop_assert!(a[0] < 4 && a[1] < 4);
            let _ = bytes;
        }

        #[test]
        fn flat_map_builds_dependent_strategies(
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..10, n..n + 1)),
        ) {
            prop_assert!((1..5).contains(&v.len()));
        }

        #[test]
        fn shuffle_permutes(
            v in Just((0u8..8).collect::<Vec<_>>()).prop_shuffle(),
        ) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0u8..8).collect::<Vec<_>>());
        }

        #[test]
        fn just_is_constant(x in Just(41u8).prop_map(|x| x + 1)) {
            prop_assert_eq!(x, 42);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut rng = crate::test_runner::TestRng::deterministic("x");
            let s = (0u32..1000, 0u32..1000);
            (0..10)
                .map(|_| s.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
