//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value: `f` maps the
    /// value to a *strategy*, which is then drawn from (mirror of
    /// `proptest`'s `prop_flat_map`).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Uniformly permutes generated collections (mirror of `proptest`'s
    /// `prop_shuffle`; implemented for strategies generating `Vec`s).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy (used by `prop_oneof!` to unify branch types).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        // Fisher–Yates, driven by the deterministic test RNG.
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// A strategy that always yields clones of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy drawing arbitrary values of `T` (see [`crate::any`]).
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any { _marker: PhantomData }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128 + 1) as u64;
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Vector strategy (see [`vec`]).
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// Generates vectors whose length is uniform in `size` and whose elements
/// come from `elem` (mirror of `proptest::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
