//! The (much simplified) test runner: configuration and the deterministic
//! RNG behind value generation.

/// Per-block configuration (only the case count is supported).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test draws.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test name, so every
/// test sees a stable-but-distinct input stream across runs and machines.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
