//! Minimal, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace (`SmallRng`, `SeedableRng`, `Rng::{gen, gen_bool,
//! gen_range}`).
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; this vendored crate keeps the workload generator's
//! source unchanged while remaining fully deterministic. The generator is
//! an *xoshiro256++*-style mix seeded through SplitMix64 — statistically
//! fine for synthetic-workload generation, not cryptographic.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Low-level generation interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable via [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Samples uniformly from the range using `bits` as the entropy source.
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (bits() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128 - start as u128 + 1) as u64;
                start + (bits() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((bits() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add((bits() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        let unit = (bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling interface (subset of `rand::Rng`), implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        let mut bits = || self.next_u64();
        range.sample_from(&mut bits)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small xoshiro256++-style generator (stand-in for
    /// `rand::rngs::SmallRng`). Deterministic for a given seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            SmallRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(2..=6u32);
            assert!((2..=6).contains(&x));
            let y = rng.gen_range(0..13usize);
            assert!(y < 13);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
