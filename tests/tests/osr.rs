//! On-stack replacement integration: hot-loop promotion (OSR-in) must
//! transfer a running baseline activation into optimized code mid-loop and
//! save cycles, and a guard-thrashing optimized activation must deoptimize
//! (OSR-out) *before it returns* — not at its next invocation, which for a
//! loop-dominated activation may never come.

use aoci_aos::{AosConfig, AosReport, AosSystem, OsrEvents};
use aoci_core::PolicyKind;
use aoci_ir::{decode_body, fusion_plan, BinOp, Cond, DecodedOp, FusedKind, Program, ProgramBuilder};
use aoci_vm::{Component, CostModel, Value, Vm};

fn baseline_result(p: &Program) -> Option<Value> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    Vm::new(p, cost).run_to_completion().expect("baseline run succeeds")
}

/// Tightens the sampling/organizer cadences so the adaptive pipeline acts
/// within a debug-mode-sized run (same knobs the aos crate's own tests use).
fn fast(mut c: AosConfig) -> AosConfig {
    // A *prime* period: these tiny programs have a fixed per-iteration
    // cycle cost, and a period sharing a factor with it makes the
    // deterministic sampler alias onto one spot in the loop body forever.
    c.cost = CostModel { sample_period: 3_001, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.decay_period_samples = 64;
    c
}

fn run(p: &Program, config: AosConfig) -> AosReport {
    AosSystem::new(p, config).run().expect("aos run succeeds")
}

/// A loop-dominated `main`: the entry method itself iterates `n` times,
/// virtually calling `val` on a global receiver that shifts from class A to
/// class B halfway through. `main` is invoked exactly once, so without OSR
/// it can never run optimized; the A/B refs it holds in registers across
/// the whole loop make the frame transfer carry reference-typed locals.
fn loop_in_main(n: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let cb = b.class("B", Some(a));
    {
        let mut m = b.virtual_method("A.val", a, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish();
    }
    {
        let mut m = b.virtual_method("B.val", cb, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish();
    }
    let g = b.global("obj");
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        m.new_obj(oa, a);
        m.new_obj(ob, cb);
        m.put_global(g, oa);
        let i = m.fresh_reg();
        let nn = m.fresh_reg();
        let one = m.fresh_reg();
        let half = m.fresh_reg();
        let acc = m.fresh_reg();
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(nn, n);
        m.const_int(one, 1);
        m.const_int(half, n / 2);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        let skip = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, nn, out);
        m.branch(Cond::Ne, i, half, skip);
        m.put_global(g, ob);
        m.bind(skip);
        m.get_global(o, g);
        m.call_virtual(Some(r), sel, o, &[]);
        m.bin(BinOp::Add, acc, acc, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };
    b.finish(main).unwrap()
}

/// Warm-then-thrash: `spin(n)` owns a loop virtually calling `val` on a
/// global receiver. `main` warms `spin` with receiver A (`warm_calls` short
/// invocations — enough for it to be optimized with a guarded inline of
/// `A.val` at an invocation boundary), swaps the global to a B instance,
/// then makes one long `spin(big_n)` call whose every guard check misses.
fn warm_then_thrash(warm_calls: i64, warm_n: i64, big_n: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let cb = b.class("B", Some(a));
    {
        let mut m = b.virtual_method("A.val", a, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish();
    }
    {
        let mut m = b.virtual_method("B.val", cb, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish();
    }
    let g = b.global("obj");
    let spin = {
        let mut m = b.static_method("spin", 1);
        let i = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(one, 1);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, m.param(0), out);
        m.get_global(o, g);
        m.call_virtual(Some(r), sel, o, &[]);
        // Self-work inside the loop: without it nearly every timer sample
        // lands on the expensive call step and is attributed to the callee,
        // so the hot-methods organizer would never select `spin` itself.
        m.work(24);
        m.bin(BinOp::Add, acc, acc, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        m.new_obj(oa, a);
        m.new_obj(ob, cb);
        m.put_global(g, oa);
        let j = m.fresh_reg();
        let calls = m.fresh_reg();
        let one = m.fresh_reg();
        let wn = m.fresh_reg();
        let bn = m.fresh_reg();
        let acc = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(j, 0);
        m.const_int(calls, warm_calls);
        m.const_int(one, 1);
        m.const_int(wn, warm_n);
        m.const_int(bn, big_n);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, j, calls, out);
        m.call_static(Some(r), spin, &[wn]);
        m.bin(BinOp::Add, acc, acc, r);
        m.bin(BinOp::Add, j, j, one);
        m.jump(top);
        m.bind(out);
        m.put_global(g, ob);
        m.call_static(Some(r), spin, &[bn]);
        m.bin(BinOp::Add, acc, acc, r);
        m.ret(Some(acc));
        m.finish()
    };
    b.finish(main).unwrap()
}

#[test]
fn hot_main_loop_is_promoted_and_saves_cycles() {
    let p = loop_in_main(6_000);
    let expected = baseline_result(&p);

    let mut with_osr = fast(AosConfig::with_osr(PolicyKind::Fixed { max: 3 }));
    with_osr.recovery.monitor_guard_health = true;
    let mut without_osr = fast(AosConfig::new(PolicyKind::Fixed { max: 3 }));
    without_osr.recovery.monitor_guard_health = true;

    let promoted = run(&p, with_osr);
    let stuck = run(&p, without_osr);

    assert_eq!(promoted.result, expected, "OSR must not change semantics");
    assert_eq!(stuck.result, expected);
    assert!(promoted.osr.requests >= 1, "hot main loop should request promotion");
    assert!(
        promoted.osr.entries >= 1,
        "the single main activation should be promoted mid-loop: {:?}",
        promoted.osr
    );
    assert!(
        promoted.clock.component(Component::Osr) > 0,
        "frame transfers are charged to the cost model"
    );
    assert_eq!(stuck.osr, OsrEvents::default(), "no OSR activity when disabled");
    assert!(
        promoted.total_cycles() < stuck.total_cycles(),
        "promotion must pay off on a loop-dominated main: {} vs {} cycles",
        promoted.total_cycles(),
        stuck.total_cycles()
    );
}

#[test]
fn thrashing_activation_deoptimizes_before_it_returns() {
    let p = warm_then_thrash(8, 300, 4_000);
    let expected = baseline_result(&p);

    let mut config = fast(AosConfig::with_osr(PolicyKind::ContextInsensitive));
    config.recovery.monitor_guard_health = true;
    // Isolate OSR-out: promotion would need a back-edge count no loop here
    // reaches, so every transition observed is a deoptimization.
    config.vm.osr_backedge_threshold = 1_000_000;

    let report = run(&p, config);
    assert_eq!(report.result, expected, "deoptimization must not change semantics");
    assert_eq!(report.osr.entries, 0, "promotion was disabled by the huge threshold");
    // Guards only miss after the receiver swap, and the only post-swap
    // activation is the single long `spin(big_n)` call — so a recorded exit
    // necessarily happened inside that activation, before it returned.
    assert!(
        report.osr.exits >= 1,
        "the thrashing activation must deoptimize mid-loop: {:?} (recovery {:?})",
        report.osr,
        report.recovery
    );
    assert!(report.clock.component(Component::Osr) > 0);

    // The identical run without OSR finishes the stale activation instead.
    let mut no_osr = fast(AosConfig::new(PolicyKind::ContextInsensitive));
    no_osr.recovery.monitor_guard_health = true;
    let stale = run(&p, no_osr);
    assert_eq!(stale.result, expected);
    assert_eq!(stale.osr, OsrEvents::default());
}

/// Like [`loop_in_main`], but shaped so the decoded form's
/// superinstruction fusion (DESIGN.md §13) overlaps both ends of the
/// loop's back edge: the loop-top instruction is the *second half* of a
/// fused `Const+Bin` pair (the jump target lands mid-superinstruction),
/// and the back edge itself is the *second half* of a fused `Bin+Branch`
/// pair (the back-edge counter fires from inside a superinstruction).
/// `fused_boundaries_are_where_this_test_thinks` pins the shape down so
/// a fusion-table change can't silently turn these tests into no-ops.
fn fused_loop_in_main(n: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let cb = b.class("B", Some(a));
    {
        let mut m = b.virtual_method("A.val", a, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish();
    }
    {
        let mut m = b.virtual_method("B.val", cb, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish();
    }
    let g = b.global("obj");
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        m.new_obj(oa, a);
        m.new_obj(ob, cb);
        m.put_global(g, oa);
        let i = m.fresh_reg();
        let nn = m.fresh_reg();
        let one = m.fresh_reg();
        let zero = m.fresh_reg();
        let half = m.fresh_reg();
        let acc = m.fresh_reg();
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(nn, n);
        m.const_int(one, 1);
        m.const_int(zero, 0);
        m.const_int(half, n / 2);
        let top = m.label();
        let skip = m.label();
        // Const directly before the loop top, Bin directly at it: the
        // back edge below jumps into the middle of this fused pair.
        m.const_int(acc, 0);
        m.bind(top);
        m.bin(BinOp::Add, acc, acc, zero);
        m.branch(Cond::Ne, i, half, skip);
        m.put_global(g, ob);
        m.bind(skip);
        m.get_global(o, g);
        m.call_virtual(Some(r), sel, o, &[]);
        m.bin(BinOp::Add, acc, acc, r);
        // Bin directly before the bottom-tested back edge: the back-edge
        // branch executes as the second half of a fused pair.
        m.bin(BinOp::Add, i, i, one);
        m.branch(Cond::Lt, i, nn, top);
        m.ret(Some(acc));
        m.finish()
    };
    b.finish(main).unwrap()
}

/// Finds `main`'s back edge (the one Branch whose target precedes it)
/// and returns `(branch_pc, target_pc)` in the decoded body.
fn back_edge(p: &Program) -> (usize, usize) {
    let main = p.methods().find(|m| m.name() == "main").expect("main exists");
    let decoded = decode_body(main.body(), p);
    for (pc, op) in decoded.iter().enumerate() {
        if let DecodedOp::Branch { target, .. } = op {
            if (*target as usize) < pc {
                return (pc, *target as usize);
            }
        }
    }
    panic!("main has no back edge");
}

/// Pins down the shape `fused_loop_in_main` claims: both the back-edge
/// branch and its target are second halves of fused pairs.
#[test]
fn fused_boundaries_are_where_this_test_thinks() {
    let p = fused_loop_in_main(6_000);
    let main = p.methods().find(|m| m.name() == "main").expect("main exists");
    let decoded = decode_body(main.body(), &p);
    let plan = fusion_plan(&decoded);
    let (branch_pc, top_pc) = back_edge(&p);
    assert_eq!(
        plan[branch_pc - 1],
        Some(FusedKind::BinBranch),
        "back edge is not the second half of a fused Bin+Branch pair"
    );
    assert_eq!(
        plan[top_pc - 1],
        Some(FusedKind::ConstBin),
        "loop top is not the second half of a fused Const+Bin pair"
    );
}

/// OSR-in across fused superinstruction boundaries: the back-edge
/// counter fires from inside a fused pair, and the promoted frame's
/// entry pc is the second half of another fused pair. Because decoded pc
/// == source pc (1:1 layout), that pc is legal in both forms — the run
/// must finish with the baseline result, actually promote, and be
/// bit-identical to the same run under the legacy dispatch loop.
#[test]
fn osr_in_crosses_fused_superinstruction_boundary() {
    let p = fused_loop_in_main(6_000);
    let expected = baseline_result(&p);
    let make = |decode: bool| {
        let mut c = fast(AosConfig::with_osr(PolicyKind::Fixed { max: 3 }));
        c.recovery.monitor_guard_health = true;
        c.vm.decode = decode;
        c
    };
    let dec = run(&p, make(true));
    let leg = run(&p, make(false));
    assert_eq!(dec.result, expected, "OSR through fused dispatch must not change semantics");
    assert!(
        dec.osr.entries >= 1,
        "the single main activation should be promoted mid-loop: {:?}",
        dec.osr
    );
    assert_eq!(dec.result, leg.result, "dispatch modes disagree on result");
    assert_eq!(dec.total_cycles(), leg.total_cycles(), "dispatch modes disagree on cycles");
    assert_eq!(dec.counters, leg.counters, "dispatch modes disagree on counters");
    assert_eq!(dec.osr, leg.osr, "dispatch modes disagree on OSR events");
    assert_eq!(dec.recovery, leg.recovery, "dispatch modes disagree on recovery events");
}

/// OSR-out landing on a fused boundary: in `warm_then_thrash`, `spin`'s
/// loop top is a Branch fused with the Const before it, so when the
/// thrashing optimized activation deoptimizes at the back edge, the
/// frame mapping's continuation pc is the second half of a fused pair in
/// the baseline body it returns to. The exit must happen, land on a
/// legal pc (the run completes with the baseline result), and be
/// bit-identical across dispatch modes.
#[test]
fn osr_out_lands_on_fused_boundary() {
    let p = warm_then_thrash(8, 300, 4_000);
    let expected = baseline_result(&p);

    // Pin the shape: spin's loop-top branch is fused with the Const
    // before it, so the deopt continuation pc sits mid-superinstruction.
    let spin = p.methods().find(|m| m.name() == "spin").expect("spin exists");
    let decoded = decode_body(spin.body(), &p);
    let plan = fusion_plan(&decoded);
    let top = decoded
        .iter()
        .enumerate()
        .find_map(|(pc, op)| match op {
            DecodedOp::Jump { target } if (*target as usize) < pc => Some(*target as usize),
            _ => None,
        })
        .expect("spin has a back edge");
    assert_eq!(
        plan[top - 1],
        Some(FusedKind::ConstBranch),
        "spin's loop top is not the second half of a fused Const+Branch pair"
    );

    let make = |decode: bool| {
        let mut c = fast(AosConfig::with_osr(PolicyKind::ContextInsensitive));
        c.recovery.monitor_guard_health = true;
        c.vm.osr_backedge_threshold = 1_000_000;
        c.vm.decode = decode;
        c
    };
    let dec = run(&p, make(true));
    let leg = run(&p, make(false));
    assert_eq!(dec.result, expected, "deopt through fused dispatch must not change semantics");
    assert_eq!(dec.osr.entries, 0, "promotion was disabled by the huge threshold");
    assert!(
        dec.osr.exits >= 1,
        "the thrashing activation must deoptimize mid-loop: {:?}",
        dec.osr
    );
    assert_eq!(dec.result, leg.result, "dispatch modes disagree on result");
    assert_eq!(dec.total_cycles(), leg.total_cycles(), "dispatch modes disagree on cycles");
    assert_eq!(dec.counters, leg.counters, "dispatch modes disagree on counters");
    assert_eq!(dec.osr, leg.osr, "dispatch modes disagree on OSR events");
    assert_eq!(dec.recovery, leg.recovery, "dispatch modes disagree on recovery events");
}

#[test]
fn osr_runs_are_deterministic() {
    let p = loop_in_main(4_000);
    let make = || {
        let mut c = fast(AosConfig::with_osr(PolicyKind::Fixed { max: 3 }));
        c.recovery.monitor_guard_health = true;
        c
    };
    let a = run(&p, make());
    let b = run(&p, make());
    assert_eq!(a.result, b.result);
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.osr, b.osr);
    assert_eq!(a.recovery, b.recovery);
}
