//! Property-based differential testing of the optimizing compiler: for
//! randomly generated programs, optimized code (with and without aggressive
//! profile-directed inlining) must produce exactly the same outcome as
//! baseline execution — including faults.

use aoci_core::{InlineOracle, RuleSet};
use aoci_ir::{BinOp, MethodId, Program, ProgramBuilder, Reg, SiteIdx};
use aoci_opt::{compile, OptConfig};
use aoci_profile::TraceKey;
use aoci_vm::{CostModel, Value, Vm, VmError};
use proptest::prelude::*;

const SCRATCH_REGS: u16 = 6;

/// One generated instruction (register indices are taken modulo the
/// method's register count, so any byte sequence is a valid program).
#[derive(Clone, Debug)]
enum Op {
    Const { dst: u8, value: i8 },
    Mov { dst: u8, src: u8 },
    Bin { op: u8, dst: u8, lhs: u8, rhs: u8 },
    Work { units: u8 },
    /// Call a previously defined method (index modulo available callees).
    Call { target: u8, dst: u8, args: [u8; 2] },
    /// Virtual call through the shared selector; the receiver comes from a
    /// global set up by main.
    VCall { dst: u8 },
}

#[derive(Clone, Debug)]
struct MethodSpec {
    arity: u8,
    ops: Vec<Op>,
    ret: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<i8>()).prop_map(|(dst, value)| Op::Const { dst, value }),
        (any::<u8>(), any::<u8>()).prop_map(|(dst, src)| Op::Mov { dst, src }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(op, dst, lhs, rhs)| Op::Bin { op, dst, lhs, rhs }),
        any::<u8>().prop_map(|units| Op::Work { units }),
        (any::<u8>(), any::<u8>(), any::<[u8; 2]>())
            .prop_map(|(target, dst, args)| Op::Call { target, dst, args }),
        any::<u8>().prop_map(|dst| Op::VCall { dst }),
    ]
}

fn method_strategy() -> impl Strategy<Value = MethodSpec> {
    (0u8..=2, prop::collection::vec(op_strategy(), 1..12), any::<u8>())
        .prop_map(|(arity, ops, ret)| MethodSpec { arity, ops, ret })
}

fn program_strategy() -> impl Strategy<Value = (Vec<MethodSpec>, [MethodSpec; 2], bool)> {
    (
        prop::collection::vec(method_strategy(), 1..6),
        [method_strategy(), method_strategy()],
        any::<bool>(),
    )
}

const BIN_OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
];

/// Assembles the generated specs into a valid program. Methods may call
/// only earlier methods, so call graphs are acyclic and execution
/// terminates.
fn assemble(
    specs: &[MethodSpec],
    impls: &[MethodSpec; 2],
    receiver_is_b: bool,
) -> (Program, Vec<(MethodId, SiteIdx, MethodId)>) {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("virt", 0);
    let class_a = b.class("A", None);
    let class_b = b.class("B", Some(class_a));
    let g_recv = b.global("recv");
    let mut edges: Vec<(MethodId, SiteIdx, MethodId)> = Vec::new();

    // The two virtual implementations are leaf methods (no calls).
    for (i, (spec, class)) in impls.iter().zip([class_a, class_b]).enumerate() {
        let mut m = b.virtual_method(format!("impl{i}"), class, sel);
        let nregs = SCRATCH_REGS;
        for _ in 1..nregs {
            m.fresh_reg();
        }
        for op in &spec.ops {
            match op {
                Op::Const { dst, value } => {
                    m.const_int(Reg(*dst as u16 % nregs), *value as i64)
                }
                Op::Mov { dst, src } => {
                    m.mov(Reg(*dst as u16 % nregs), Reg(*src as u16 % nregs))
                }
                Op::Bin { op, dst, lhs, rhs } => m.bin(
                    BIN_OPS[*op as usize % BIN_OPS.len()],
                    Reg(*dst as u16 % nregs),
                    Reg(*lhs as u16 % nregs),
                    Reg(*rhs as u16 % nregs),
                ),
                Op::Work { units } => m.work(*units as u32),
                // Leaves: calls become work.
                Op::Call { .. } | Op::VCall { .. } => m.work(1),
            }
        }
        m.ret(Some(Reg(spec.ret as u16 % nregs)));
        m.finish();
    }

    let mut methods: Vec<(MethodId, u8)> = Vec::new(); // (id, arity)
    for (i, spec) in specs.iter().enumerate() {
        let arity = spec.arity as u16;
        let mut m = b.static_method(format!("m{i}"), arity);
        let nregs = SCRATCH_REGS + arity;
        for _ in arity..nregs {
            m.fresh_reg();
        }
        for op in &spec.ops {
            match op {
                Op::Const { dst, value } => {
                    m.const_int(Reg(*dst as u16 % nregs), *value as i64)
                }
                Op::Mov { dst, src } => {
                    m.mov(Reg(*dst as u16 % nregs), Reg(*src as u16 % nregs))
                }
                Op::Bin { op, dst, lhs, rhs } => m.bin(
                    BIN_OPS[*op as usize % BIN_OPS.len()],
                    Reg(*dst as u16 % nregs),
                    Reg(*lhs as u16 % nregs),
                    Reg(*rhs as u16 % nregs),
                ),
                Op::Work { units } => m.work(*units as u32),
                Op::Call { target, dst, args } => {
                    if methods.is_empty() {
                        m.work(1);
                    } else {
                        let (callee, callee_arity) =
                            methods[*target as usize % methods.len()];
                        let argv: Vec<Reg> = (0..callee_arity)
                            .map(|k| Reg(args[k as usize % 2] as u16 % nregs))
                            .collect();
                        let site = m.call_static(
                            Some(Reg(*dst as u16 % nregs)),
                            callee,
                            &argv,
                        );
                        edges.push((m.id(), site, callee));
                    }
                }
                Op::VCall { dst } => {
                    let recv = Reg(nregs - 1);
                    m.get_global(recv, g_recv);
                    m.call_virtual(Some(Reg(*dst as u16 % nregs)), sel, recv, &[]);
                }
            }
        }
        m.ret(Some(Reg(spec.ret as u16 % nregs)));
        methods.push((m.finish(), spec.arity));
    }

    let main = {
        let mut m = b.static_method("main", 0);
        let r = m.fresh_reg();
        let o = m.fresh_reg();
        m.new_obj(o, if receiver_is_b { class_b } else { class_a });
        m.put_global(g_recv, o);
        let (top, arity) = *methods.last().expect("at least one method");
        let argv: Vec<Reg> = (0..arity).map(|_| r).collect();
        m.const_int(r, 5);
        m.call_static(Some(r), top, &argv);
        m.ret(Some(r));
        m.finish()
    };
    (b.finish(main).expect("assembled program is valid"), edges)
}

/// Execution outcome with faults reduced to their kind (fault *locations*
/// legitimately differ between baseline and inlined code).
fn outcome(program: &Program, versions: Option<Vec<aoci_vm::MethodVersion>>) -> Result<Option<Value>, String> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    let mut vm = Vm::new(program, cost);
    if let Some(vs) = versions {
        for v in vs {
            vm.registry_mut().install(v);
        }
    }
    vm.run_to_completion().map_err(|e| {
        match e {
            VmError::NullDeref { .. } => "null",
            VmError::TypeError { .. } => "type",
            VmError::DivideByZero { .. } => "div0",
            VmError::IndexOutOfBounds { .. } => "bounds",
            VmError::NoSuchMethod { .. } => "nosuch",
            VmError::NegativeArrayLength { .. } => "neglen",
            VmError::StackOverflow { .. } => "overflow",
            VmError::BadRegister { .. } => "badreg",
            VmError::PcOutOfRange { .. } => "badpc",
            VmError::NoActiveFrame { .. } => "noframe",
        }
        .to_string()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimizing every method with static heuristics only preserves the
    /// program outcome exactly (including fault kinds).
    #[test]
    fn optimized_code_matches_baseline((specs, impls, recv_b) in program_strategy()) {
        let (program, _) = assemble(&specs, &impls, recv_b);
        let base = outcome(&program, None);
        let oracle = InlineOracle::empty();
        let config = OptConfig::default();
        let versions: Vec<_> = program
            .methods()
            .map(|m| compile(&program, m.id(), &oracle, &config).version)
            .collect();
        let opt = outcome(&program, Some(versions));
        prop_assert_eq!(base, opt);
    }

    /// Same, with an oracle that marks *every* observed call edge hot —
    /// maximally aggressive profile-directed inlining.
    #[test]
    fn aggressively_inlined_code_matches_baseline((specs, impls, recv_b) in program_strategy()) {
        let (program, edges) = assemble(&specs, &impls, recv_b);
        let base = outcome(&program, None);
        let rules: Vec<(TraceKey, f64)> = edges
            .iter()
            .map(|&(caller, site, callee)| {
                (TraceKey::edge(aoci_ir::CallSiteRef::new(caller, site), callee), 100.0)
            })
            .collect();
        let total = rules.len().max(1) as f64 * 100.0;
        let oracle = InlineOracle::new(RuleSet::from_rules(rules, total).into());
        let config = OptConfig::default();
        let versions: Vec<_> = program
            .methods()
            .map(|m| compile(&program, m.id(), &oracle, &config).version)
            .collect();
        let opt = outcome(&program, Some(versions));
        prop_assert_eq!(base, opt);
    }

    /// The simplifier must not change outcomes either: compare simplify on
    /// vs off under aggressive inlining.
    #[test]
    fn simplifier_is_semantics_preserving((specs, impls, recv_b) in program_strategy()) {
        let (program, edges) = assemble(&specs, &impls, recv_b);
        let rules: Vec<(TraceKey, f64)> = edges
            .iter()
            .map(|&(caller, site, callee)| {
                (TraceKey::edge(aoci_ir::CallSiteRef::new(caller, site), callee), 100.0)
            })
            .collect();
        let total = rules.len().max(1) as f64 * 100.0;
        let oracle = InlineOracle::new(RuleSet::from_rules(rules, total).into());
        let plain = OptConfig { simplify: false, ..OptConfig::default() };
        let simp = OptConfig::default();
        let with = |config: &OptConfig| -> Vec<_> {
            program
                .methods()
                .map(|m| compile(&program, m.id(), &oracle, config).version)
                .collect()
        };
        let a = outcome(&program, Some(with(&plain)));
        let b = outcome(&program, Some(with(&simp)));
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness of the IR type verifier on register uses: if a random
    /// program verifies, executing it never raises a type error or reads an
    /// uninitialised register (other fault kinds — division by zero, null
    /// dereference through heap defaults — remain possible and allowed).
    #[test]
    fn verified_programs_have_no_register_type_faults((specs, impls, recv_b) in program_strategy()) {
        let (program, _) = assemble(&specs, &impls, recv_b);
        if aoci_ir::typecheck::verify(&program).is_ok() {
            let got = outcome(&program, None);
            prop_assert_ne!(got, Err("type".to_string()));
        }
    }
}
