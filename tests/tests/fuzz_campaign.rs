//! End-to-end checks on the differential fuzzing campaign (DESIGN.md
//! §12): a fixed-seed campaign runs clean, its corpus fingerprint is
//! byte-identical across worker counts (the property the CI
//! `fuzz-campaign` job enforces at scale against the committed
//! `results/fuzz/corpus.json`), and the coverage map actually reaches the
//! decision space the generator was built to exercise.

use aoci_core::JobPool;
use aoci_fuzz::persist::corpus_to_value;
use aoci_fuzz::{run_campaign, CampaignConfig};
use std::collections::BTreeSet;

const SEED: u64 = 20_030_323; // CGO 2003 — same fixed seed the oracle suite uses.
const ITERS: usize = 12;

fn corpus_bytes(workers: usize) -> String {
    let out = run_campaign(
        &CampaignConfig { seed: SEED, iters: ITERS, metrics: false },
        &JobPool::new(workers),
    );
    assert!(
        out.findings.is_empty(),
        "fixed-seed campaign must be clean, got {:?}",
        out.findings
    );
    aoci_json::to_string_pretty(&corpus_to_value(out.seed, ITERS, &out.corpus, &out.features))
}

#[test]
fn fixed_seed_campaign_is_clean_and_worker_count_invariant() {
    let serial = corpus_bytes(1);
    assert_eq!(serial, corpus_bytes(2), "AOCI_JOBS=2 must reproduce the serial corpus");
    assert_eq!(serial, corpus_bytes(8), "AOCI_JOBS=8 must reproduce the serial corpus");
}

#[test]
fn campaign_coverage_reaches_the_decision_space() {
    let out =
        run_campaign(&CampaignConfig { seed: SEED, iters: ITERS, metrics: false }, &JobPool::new(4));
    assert!(out.findings.is_empty(), "findings: {:?}", out.findings);

    let prefixes: BTreeSet<&str> =
        out.features.iter().filter_map(|f| f.split(':').next()).collect();
    for expected in ["inline", "plan", "fault", "profile"] {
        assert!(
            prefixes.contains(expected),
            "campaign never reached `{expected}:` coverage; features: {:?}",
            out.features
        );
    }
    // The corpus is coverage-guided: entries must be strictly increasing
    // in index, each claiming at least one feature, jointly claiming all.
    let mut last = None;
    let mut claimed = 0usize;
    for e in &out.corpus {
        assert!(last.is_none_or(|l| e.index > l), "corpus not in index order");
        assert!(!e.new_features.is_empty());
        claimed += e.new_features.len();
        last = Some(e.index);
    }
    assert_eq!(claimed, out.features.len(), "features claimed exactly once");
    assert!(
        out.corpus.len() < out.cases.len(),
        "coverage guidance should reject cases adding nothing new ({} of {})",
        out.corpus.len(),
        out.cases.len()
    );
}

#[test]
fn campaign_outcome_is_reproducible_end_to_end() {
    let a = run_campaign(&CampaignConfig { seed: 7, iters: 5, metrics: false }, &JobPool::new(3));
    let b = run_campaign(&CampaignConfig { seed: 7, iters: 5, metrics: false }, &JobPool::new(3));
    assert_eq!(a.features, b.features);
    assert_eq!(a.corpus.len(), b.corpus.len());
    for (x, y) in a.cases.iter().zip(&b.cases) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.fingerprint, y.fingerprint);
    }
}
