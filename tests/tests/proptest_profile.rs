//! Property-based tests on the profiling data structures: trace keys,
//! the dynamic call graph and rule-set queries.

use aoci_ir::{CallSiteRef, MethodId, SiteIdx};
use aoci_profile::{Dcg, DcgConfig, TraceKey};
use aoci_core::RuleSet;
use proptest::prelude::*;

fn cs_strategy() -> impl Strategy<Value = CallSiteRef> {
    (0usize..8, 0u16..4)
        .prop_map(|(m, s)| CallSiteRef::new(MethodId::from_index(m), SiteIdx(s)))
}

fn trace_strategy() -> impl Strategy<Value = TraceKey> {
    (0usize..8, prop::collection::vec(cs_strategy(), 1..5))
        .prop_map(|(callee, ctx)| TraceKey::new(MethodId::from_index(callee), ctx))
}

proptest! {
    /// Every prefix of a trace partial-matches it (and vice versa), and the
    /// trace extends each of its prefixes.
    #[test]
    fn prefixes_always_match(trace in trace_strategy(), k in 1usize..5) {
        let k = k.min(trace.depth());
        let prefix = trace.prefix(k);
        prop_assert!(trace.partial_matches(&prefix));
        prop_assert!(prefix.partial_matches(&trace));
        prop_assert!(trace.extends(&prefix));
        prop_assert_eq!(prefix.depth(), k);
        prop_assert_eq!(prefix.immediate_caller(), trace.immediate_caller());
    }

    /// Partial matching is symmetric and reflexive.
    #[test]
    fn partial_match_symmetry(a in trace_strategy(), b in trace_strategy()) {
        prop_assert!(a.partial_matches(&a));
        prop_assert_eq!(a.partial_matches(&b), b.partial_matches(&a));
    }

    /// The DCG's incremental total always equals the sum of its entries,
    /// through arbitrary record/decay interleavings.
    #[test]
    fn dcg_total_weight_invariant(
        ops in prop::collection::vec(
            prop_oneof![
                (trace_strategy(), 0.1f64..10.0).prop_map(|(t, w)| (Some((t, w)), 0.0)),
                (0.5f64..1.0).prop_map(|f| (None, f)),
            ],
            1..40,
        )
    ) {
        let mut dcg = Dcg::new(DcgConfig::default());
        for (record, decay) in ops {
            match record {
                Some((t, w)) => dcg.record(t, w),
                None => dcg.decay(decay),
            }
            let sum: f64 = dcg.iter().map(|(_, w)| w).sum();
            prop_assert!((dcg.total_weight() - sum).abs() < 1e-6,
                "total {} != sum {sum}", dcg.total_weight());
        }
    }

    /// Every hot trace really holds at least the threshold fraction, and
    /// hot output is sorted by descending weight.
    #[test]
    fn hot_respects_threshold(
        entries in prop::collection::vec((trace_strategy(), 0.1f64..10.0), 1..30),
        threshold in 0.01f64..0.5,
    ) {
        let mut dcg = Dcg::new(DcgConfig::default());
        for (t, w) in entries {
            dcg.record(t, w);
        }
        let hot = dcg.hot(threshold);
        for h in &hot {
            prop_assert!(h.fraction >= threshold - 1e-12);
            prop_assert!((h.weight / dcg.total_weight() - h.fraction).abs() < 1e-9);
        }
        for pair in hot.windows(2) {
            prop_assert!(pair[0].weight >= pair[1].weight);
        }
    }

    /// Rule-set candidate targets always come from applicable rules, and a
    /// lone rule queried with its own full context yields its callee.
    #[test]
    fn candidates_are_sound(
        rules in prop::collection::vec((trace_strategy(), 0.5f64..5.0), 1..20),
        probe in trace_strategy(),
    ) {
        let total: f64 = rules.iter().map(|(_, w)| w).sum();
        let set = RuleSet::from_rules(rules.clone(), total);
        let candidates = set.candidates(probe.context());
        let applicable_callees: Vec<MethodId> = set
            .applicable(probe.context())
            .iter()
            .map(|r| r.trace.callee())
            .collect();
        for (c, w) in &candidates {
            prop_assert!(applicable_callees.contains(c));
            prop_assert!(*w > 0.0);
        }

        // A singleton rule set answers its own context.
        let (lone, w) = rules[0].clone();
        let lone_set = RuleSet::from_rules([(lone.clone(), w)], w);
        let own = lone_set.candidates(lone.context());
        prop_assert_eq!(own, vec![(lone.callee(), w)]);
    }

    /// Merge-on-collect (the ablation mode) conserves total weight.
    #[test]
    fn merge_mode_conserves_weight(
        entries in prop::collection::vec((trace_strategy(), 0.1f64..10.0), 1..30),
    ) {
        let mut plain = Dcg::new(DcgConfig::default());
        let mut merged = Dcg::new(DcgConfig { merge_on_collect: true, ..DcgConfig::default() });
        for (t, w) in entries {
            plain.record(t.clone(), w);
            merged.record(t, w);
        }
        prop_assert!((plain.total_weight() - merged.total_weight()).abs() < 1e-9);
        prop_assert!(merged.len() <= plain.len());
    }
}

proptest! {
    /// The calling-context tree and the flat DCG are interchangeable
    /// representations: identical inputs give identical totals, entry sets
    /// and hot extractions.
    #[test]
    fn cct_and_flat_dcg_agree(
        entries in prop::collection::vec((trace_strategy(), 0.1f64..10.0), 1..40),
        threshold in 0.01f64..0.3,
    ) {
        use aoci_profile::{CallingContextTree, ProfileStore};
        let mut flat = Dcg::new(DcgConfig::default());
        let mut cct = CallingContextTree::default();
        for (t, w) in &entries {
            ProfileStore::record(&mut flat, t.clone(), *w);
            cct.record(t.clone(), *w);
        }
        prop_assert!((ProfileStore::total_weight(&flat) - cct.total_weight()).abs() < 1e-6);
        prop_assert_eq!(ProfileStore::len(&flat), cct.len());

        let mut a: Vec<_> = ProfileStore::entries(&flat);
        let mut b: Vec<_> = cct.entries();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        prop_assert_eq!(a.len(), b.len());
        for ((ka, wa), (kb, wb)) in a.iter().zip(&b) {
            prop_assert_eq!(ka, kb);
            prop_assert!((wa - wb).abs() < 1e-9);
        }

        let ha = ProfileStore::hot(&flat, threshold);
        let hb = cct.hot(threshold);
        prop_assert_eq!(ha.len(), hb.len());
        for (x, y) in ha.iter().zip(&hb) {
            prop_assert_eq!(&x.key, &y.key);
            prop_assert!((x.weight - y.weight).abs() < 1e-9);
        }
    }
}
