//! The parallel sweep harness's core guarantee: **worker count is not an
//! input to any measured result**. The grid, the per-cell aggregates and
//! the differential-oracle reports must serialize to the same bytes under
//! `AOCI_JOBS=1` (the serial legacy path), `2` and `8` — the job pool only
//! reorders *when* work happens on the wall clock, never *what* any job
//! computes or the order results are merged in.

use aoci_aos::{AosConfig, FaultConfig};
use aoci_bench::{run_one, sweep_into, EnvConfig, GridStore};
use aoci_core::PolicyKind;
use aoci_vm::CostModel;
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

/// Worker counts the determinism contract is asserted over.
const JOB_COUNTS: [usize; 3] = [1, 2, 8];

/// An explicit configuration differing from the defaults only in worker
/// count and a short rep count — tests never read the ambient environment,
/// so they cannot be perturbed by (or race on) process-global state.
fn env_with_jobs(jobs: usize) -> EnvConfig {
    EnvConfig { jobs, reps: 2, ..EnvConfig::default() }
}

/// A shrunken suite workload: same structure, short run.
fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 150;
    spec
}

/// `grid.json` bytes are identical whether the sweep ran serially or on 2
/// or 8 workers.
#[test]
fn grid_json_is_byte_identical_across_job_counts() {
    let specs = vec![small("compress"), small("db")];
    let policies = vec![
        PolicyKind::ContextInsensitive,
        PolicyKind::Fixed { max: 2 },
        PolicyKind::AdaptiveResolving { max: 2 },
    ];
    let mut baseline: Option<String> = None;
    for jobs in JOB_COUNTS {
        let mut store = GridStore::default();
        let stats = sweep_into(&mut store, &specs, &policies, &env_with_jobs(jobs))
            .expect("an empty store has cells to measure");
        assert_eq!(stats.jobs, specs.len() * policies.len() * 2, "jobs={jobs}");
        let json = store.to_json();
        match &baseline {
            None => baseline = Some(json),
            Some(b) => assert_eq!(
                &json, b,
                "grid.json bytes diverged between AOCI_JOBS=1 and AOCI_JOBS={jobs}"
            ),
        }
    }
}

/// A cached grid is not re-measured: sweeping the same matrix into a full
/// store is a no-op for any worker count.
#[test]
fn full_store_sweeps_nothing() {
    let specs = vec![small("db")];
    let policies = vec![PolicyKind::Fixed { max: 2 }];
    let mut store = GridStore::default();
    sweep_into(&mut store, &specs, &policies, &env_with_jobs(2)).expect("measures the cell");
    let before = store.to_json();
    assert!(sweep_into(&mut store, &specs, &policies, &env_with_jobs(8)).is_none());
    assert_eq!(store.to_json(), before);
}

/// The per-cell rep loop (`run_one`) aggregates identically whether its
/// repetitions ran serially or across the pool.
#[test]
fn run_one_rep_loop_is_worker_count_invariant() {
    let spec = small("jess");
    let policy = PolicyKind::Fixed { max: 3 };
    let serial = run_one(&spec, policy, &env_with_jobs(1)).to_value();
    for jobs in [2, 8] {
        let parallel = run_one(&spec, policy, &env_with_jobs(jobs)).to_value();
        assert_eq!(
            aoci_json::to_string(&parallel),
            aoci_json::to_string(&serial),
            "run_one aggregate diverged at jobs={jobs}"
        );
    }
}

/// The differential-oracle matrix — policy × ±OSR × ±chaos, the same shape
/// `differential_oracle.rs` runs — serializes to byte-identical reports
/// for any worker count.
#[test]
fn oracle_reports_are_byte_identical_across_job_counts() {
    let w = build(&small("compress"));
    let seed = 7;
    let mut cells: Vec<(PolicyKind, bool, bool)> = Vec::new();
    for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
        for osr in [false, true] {
            for chaos in [false, true] {
                cells.push((policy, osr, chaos));
            }
        }
    }
    let render = |jobs: usize| -> String {
        let env = env_with_jobs(jobs);
        env.pool()
            .map(cells.clone(), |&(policy, osr, chaos)| {
                let mut c = AosConfig::new(policy).enable_guard_monitoring();
                if osr {
                    c = c.enable_osr();
                }
                if chaos {
                    c = c.enable_faults(FaultConfig::chaos(seed));
                }
                c.cost = CostModel { sample_period: 2_003, ..CostModel::default() };
                c.hot_method_samples = 2;
                c.organizer_period_samples = 4;
                c.missing_edge_period_samples = 8;
                c.vm.osr_backedge_threshold = 48;
                let report = aoci_aos::AosSystem::new(&w.program, c).run().expect("runs");
                format!("{policy}/osr={osr}/chaos={chaos}: {}\n", aoci_json::to_string(&report.to_value()))
            })
            .concat()
    };
    let serial = render(1);
    assert!(serial.len() > cells.len(), "reports rendered");
    for jobs in [2, 8] {
        assert_eq!(render(jobs), serial, "oracle reports diverged at jobs={jobs}");
    }
}
