//! Asynchronous background compilation through the differential oracle.
//!
//! Two properties anchor the subsystem:
//!
//! * **Degenerate equivalence.** One worker with zero queue latency is the
//!   synchronous system re-expressed: every plan dispatches and completes
//!   inside its tick with its full cost charged as foreground stall. Such a
//!   configuration must reproduce the legacy synchronous run's report
//!   bit-for-bit — same cycles per component, same counters, same
//!   compilations — differing only in the async activity ledger itself and
//!   in within-tick compilation-log order (priority order vs FIFO order;
//!   see [`sorted_log`]).
//! * **Reproducibility.** A genuinely concurrent configuration (multiple
//!   workers, real compile latency) runs on the same deterministic
//!   simulated clock, so same-seed reruns are bit-identical across the
//!   policy × OSR × chaos matrix.

use aoci_aos::{
    AosConfig, AosReport, AosSystem, AsyncCompileConfig, AsyncCompileEvents, FaultConfig,
};
use aoci_core::PolicyKind;
use aoci_vm::{CostModel, Value, Vm, COMPONENTS};
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

fn oracle_seed() -> u64 {
    // Through the unified knob registry — no scattered env parsing.
    aoci_bench::EnvConfig::from_env().oracle_seed
}

fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 120;
    spec
}

fn oracle_result(program: &aoci_ir::Program) -> Option<Value> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    Vm::new(program, cost)
        .run_to_completion()
        .expect("oracle run succeeds")
}

/// The differential-oracle configuration (same knobs as
/// `differential_oracle.rs`), synchronous compilation.
fn sync_config(policy: PolicyKind, osr: bool, fault: Option<FaultConfig>) -> AosConfig {
    let mut c = if osr { AosConfig::with_osr(policy) } else { AosConfig::new(policy) };
    c.cost = CostModel { sample_period: 2_003, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.vm.osr_backedge_threshold = 48;
    c.recovery.monitor_guard_health = true;
    c.fault = fault;
    c
}

/// The degenerate async pool: one worker, zero latency, effectively
/// unbounded queue — synchronous semantics through the async machinery.
fn degenerate(mut c: AosConfig) -> AosConfig {
    c.async_compile = Some(AsyncCompileConfig {
        workers: 1,
        queue_capacity: usize::MAX / 2,
        zero_latency: true,
    });
    c
}

/// A genuinely concurrent pool (the `AosConfig::with_async_compile`
/// defaults: two workers, bounded queue, real compile latency).
fn concurrent(mut c: AosConfig) -> AosConfig {
    c.async_compile = Some(AsyncCompileConfig::default());
    c
}

fn run(program: &aoci_ir::Program, c: AosConfig) -> AosReport {
    AosSystem::new(program, c).run().expect("adaptive run succeeds")
}

/// Asserts every metric of the two reports matches bit-for-bit, except the
/// async activity ledger itself (`async_compile`), which by construction
/// differs between a synchronous run (all zeros) and its degenerate-async
/// mirror (counts the queue traffic).
fn assert_metrics_identical(a: &AosReport, b: &AosReport, what: &str) {
    assert_eq!(a.result, b.result, "{what}: result diverged");
    for c in COMPONENTS {
        assert_eq!(a.clock.component(c), b.clock.component(c), "{what}: component {c} diverged");
    }
    assert_eq!(a.total_cycles(), b.total_cycles(), "{what}: cycle totals diverged");
    assert_eq!(a.optimized_code_size, b.optimized_code_size, "{what}: code size diverged");
    assert_eq!(
        a.current_optimized_size, b.current_optimized_size,
        "{what}: current size diverged"
    );
    assert_eq!(a.opt_compilations, b.opt_compilations, "{what}: opt compilations diverged");
    assert_eq!(
        a.baseline_compilations, b.baseline_compilations,
        "{what}: baseline compilations diverged"
    );
    assert_eq!(a.samples, b.samples, "{what}: sample counts diverged");
    assert_eq!(a.traces_recorded, b.traces_recorded, "{what}: trace counts diverged");
    assert_eq!(a.frames_walked, b.frames_walked, "{what}: frames walked diverged");
    assert_eq!(a.dcg_entries, b.dcg_entries, "{what}: DCG sizes diverged");
    assert_eq!(a.final_rules, b.final_rules, "{what}: rule counts diverged");
    assert_eq!(a.trace_stats, b.trace_stats, "{what}: trace stats diverged");
    assert_eq!(a.counters, b.counters, "{what}: exec counters diverged");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery events diverged");
    assert_eq!(a.osr, b.osr, "{what}: OSR events diverged");
}

/// The compilation log as a sorted multiset. Within one tick the sync FIFO
/// completes plans in enqueue order while the async priority queue completes
/// them in benefit order — an intentional scheduling difference that permutes
/// log entries without changing what was compiled, when (to the cycle), or
/// at what cost. Cross-tick order is preserved by both, so the sorted logs
/// must agree exactly.
fn sorted_log(r: &AosReport) -> Vec<(usize, u64, u32, u32)> {
    let mut v: Vec<_> = r
        .compilations
        .iter()
        .map(|c| (c.method.index(), c.generated_size as u64, c.inlines, c.guarded))
        .collect();
    v.sort_unstable();
    v
}

const ALL_POLICIES: [PolicyKind; 3] = [
    PolicyKind::ContextInsensitive,
    PolicyKind::Fixed { max: 3 },
    PolicyKind::AdaptiveResolving { max: 3 },
];

/// S4: the degenerate-equivalence oracle. One worker + zero latency must
/// reproduce the legacy synchronous report bit-identically (faultless: the
/// injector's draw sequence is keyed to compile dispatch order, which the
/// priority queue deliberately changes).
#[test]
fn degenerate_async_reproduces_sync_bit_for_bit() {
    for name in ["compress", "db"] {
        let w = build(&small(name));
        let expected = oracle_result(&w.program);
        for policy in ALL_POLICIES {
            for osr in [false, true] {
                let what = format!("{name}/{policy}/osr={osr}/degenerate-async");
                let sync = run(&w.program, sync_config(policy, osr, None));
                let degen = run(&w.program, degenerate(sync_config(policy, osr, None)));
                assert_eq!(sync.result, expected, "{what}: sync diverged from oracle");
                assert_metrics_identical(&sync, &degen, &what);
                assert_eq!(
                    sorted_log(&sync),
                    sorted_log(&degen),
                    "{what}: compilation logs diverged beyond within-tick order"
                );
                assert_eq!(
                    sync.async_compile,
                    AsyncCompileEvents::default(),
                    "{what}: sync run booked async activity"
                );
                let ev = degen.async_compile;
                if ev.dispatched > 0 {
                    assert_eq!(
                        ev.background_overlap_cycles, 0,
                        "{what}: zero-latency compiles cannot overlap: {ev:?}"
                    );
                }
            }
        }
    }
}

/// Concurrent async runs stay deterministic across the policy × OSR × chaos
/// matrix, reproduce the oracle's program result, and actually overlap
/// compilation with execution on at least one configuration.
#[test]
fn concurrent_async_is_reproducible_and_overlaps() {
    let seed = oracle_seed();
    let w = build(&small("compress"));
    let expected = oracle_result(&w.program);
    let mut any_overlap = 0u64;
    for policy in ALL_POLICIES {
        for osr in [false, true] {
            for fault in [None, Some(FaultConfig::chaos(seed))] {
                let what = format!(
                    "compress/{policy}/osr={osr}/fault={}/seed={seed}/async",
                    fault.is_some()
                );
                let a = run(&w.program, concurrent(sync_config(policy, osr, fault.clone())));
                let b = run(&w.program, concurrent(sync_config(policy, osr, fault.clone())));
                assert_eq!(a.result, expected, "{what}: diverged from the oracle");
                assert_metrics_identical(&a, &b, &what);
                assert_eq!(a.compilations, b.compilations, "{what}: compilation logs diverged");
                assert_eq!(a.async_compile, b.async_compile, "{what}: async ledgers diverged");
                any_overlap += a.async_compile.background_overlap_cycles;
            }
        }
    }
    assert!(
        any_overlap > 0,
        "at least one concurrent configuration should overlap compiles with execution"
    );
}

/// The overlap/stall split accounts for every compilation-thread cycle in a
/// faultless, OSR-less async run: the thread is only ever charged the stall.
#[test]
fn async_stall_accounts_for_all_compile_cycles() {
    for name in ["mtrt", "jess"] {
        let w = build(&small(name));
        let report = run(
            &w.program,
            concurrent(sync_config(PolicyKind::Fixed { max: 3 }, false, None)),
        );
        let ev = report.async_compile;
        assert_eq!(
            report.compile_cycles(),
            ev.foreground_stall_cycles,
            "{name}: compilation-thread cycles must equal the booked stall: {ev:?}"
        );
        assert!(
            ev.dispatched >= ev.completed,
            "{name}: completions cannot exceed dispatches: {ev:?}"
        );
        assert!(
            ev.enqueued >= ev.dispatched,
            "{name}: dispatches cannot exceed enqueues: {ev:?}"
        );
    }
}
