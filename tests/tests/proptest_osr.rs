//! Property-based tests on the OSR frame maps: every transfer an
//! [`OsrPoint`] accepts must be losslessly reversible (including for
//! reference-typed locals), and every frame/map combination it cannot
//! prove safe must be *refused* — an error, never a panic and never a
//! silently corrupt frame.

use aoci_ir::{ClassId, Reg};
use aoci_vm::{Heap, OsrError, OsrMap, OsrPoint, OsrSlot, Value};
use proptest::prelude::*;

/// An arbitrary frame of `len` runtime values, mixing nulls, integers and
/// genuine heap references (allocated from a scratch heap so the `ObjRef`s
/// are real, distinguishable objects).
fn frame_strategy(len: usize) -> impl Strategy<Value = Vec<Value>> {
    let slot = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (0u32..8).prop_map(|i| {
            let mut heap = Heap::new();
            let mut last = None;
            for _ in 0..=i {
                last = Some(heap.alloc_object(ClassId::from_index(0), 1));
            }
            Value::Ref(last.expect("allocated at least one object"))
        }),
    ];
    prop::collection::vec(slot, len..len + 1)
}

/// Arbitrary (possibly malformed) slot lists against frames of
/// `baseline_regs`/`opt_regs` registers: registers are drawn from a range
/// slightly *wider* than the frames so out-of-range and aliased slots
/// occur naturally.
fn slots_strategy(baseline_regs: u16, opt_regs: u16) -> impl Strategy<Value = Vec<OsrSlot>> {
    prop::collection::vec(
        (0..baseline_regs + 2, 0..opt_regs + 2)
            .prop_map(|(b, o)| OsrSlot { baseline: Reg(b), optimized: Reg(o) }),
        0..12,
    )
}

/// What `OsrPoint::validate` must decide for a slot list, derived
/// independently of its implementation.
fn expect_valid(slots: &[OsrSlot], baseline_regs: u16, opt_regs: u16) -> bool {
    let in_range = slots
        .iter()
        .all(|s| s.baseline.0 < baseline_regs && s.optimized.0 < opt_regs);
    let mut base: Vec<u16> = slots.iter().map(|s| s.baseline.0).collect();
    let mut opt: Vec<u16> = slots.iter().map(|s| s.optimized.0).collect();
    base.sort_unstable();
    base.dedup();
    opt.sort_unstable();
    opt.dedup();
    in_range && base.len() == slots.len() && opt.len() == slots.len()
}

proptest! {
    /// The inliner's identity map round-trips any frame — including
    /// reference-typed locals — and pads the wider optimized frame with
    /// nulls, exactly like a fresh invocation frame.
    #[test]
    fn identity_roundtrip_is_lossless(
        frame in (1usize..12).prop_flat_map(frame_strategy),
        extra in 0u16..6,
        bpc in 0u32..64,
        opc in 0u32..64,
    ) {
        let n = frame.len() as u16;
        let p = OsrPoint::identity(bpc, opc, n);
        prop_assert!(p.validate(n, n + extra).is_ok());
        let opt = p.map_to_optimized(&frame, n + extra).unwrap();
        prop_assert_eq!(&opt[..frame.len()], &frame[..]);
        prop_assert!(opt[frame.len()..].iter().all(|v| matches!(v, Value::Null)));
        let back = p.map_to_baseline(&opt, n).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// A map whose optimized side is an arbitrary permutation of the
    /// baseline window still round-trips losslessly: `map_to_baseline` is
    /// the inverse of `map_to_optimized` for every valid point, whatever
    /// shuffling the register correspondence performs.
    #[test]
    fn permuted_slots_roundtrip(
        (frame, perm) in (2usize..10).prop_flat_map(|n| {
            let perm = Just((0..n as u16).collect::<Vec<_>>()).prop_shuffle();
            (frame_strategy(n), perm)
        }),
    ) {
        let n = frame.len() as u16;
        let p = OsrPoint {
            baseline_pc: 0,
            opt_pc: 0,
            slots: perm
                .iter()
                .enumerate()
                .map(|(b, &o)| OsrSlot { baseline: Reg(b as u16), optimized: Reg(o) })
                .collect(),
        };
        prop_assert!(p.validate(n, n).is_ok());
        let opt = p.map_to_optimized(&frame, n).unwrap();
        for (b, &o) in perm.iter().enumerate() {
            prop_assert_eq!(opt[o as usize], frame[b]);
        }
        prop_assert_eq!(p.map_to_baseline(&opt, n).unwrap(), frame);
    }

    /// `validate` accepts exactly the in-range, alias-free slot lists (the
    /// reversible ones), and whenever it accepts, the transfer really is
    /// reversible: every mapped baseline register survives the round trip
    /// and every unmapped one comes back dead (null).
    #[test]
    fn validate_ok_iff_reversible(
        slots in slots_strategy(6, 8),
        frame in frame_strategy(6),
    ) {
        let p = OsrPoint { baseline_pc: 0, opt_pc: 0, slots };
        let verdict = p.validate(6, 8);
        prop_assert_eq!(verdict.is_ok(), expect_valid(&p.slots, 6, 8), "{:?}", verdict);
        if verdict.is_ok() {
            let opt = p.map_to_optimized(&frame, 8).unwrap();
            let back = p.map_to_baseline(&opt, 6).unwrap();
            for r in 0..6u16 {
                let mapped = p.slots.iter().any(|s| s.baseline.0 == r);
                if mapped {
                    prop_assert_eq!(back[r as usize], frame[r as usize]);
                } else {
                    prop_assert_eq!(back[r as usize], Value::Null);
                }
            }
        }
    }

    /// Transfers through *any* slot list — valid or not — never panic and
    /// never fabricate a frame: they either succeed or return an error
    /// that leaves both frames untouched.
    #[test]
    fn transfers_never_panic(
        slots in slots_strategy(6, 8),
        frame in (0usize..10).prop_flat_map(frame_strategy),
        target in 0u16..10,
    ) {
        let p = OsrPoint { baseline_pc: 0, opt_pc: 0, slots };
        if let Ok(out) = p.map_to_optimized(&frame, target) {
            prop_assert_eq!(out.len(), target as usize);
        }
        if let Ok(out) = p.map_to_baseline(&frame, target) {
            prop_assert_eq!(out.len(), target as usize);
        }
    }

    /// A frame shorter than the map's widest slot is always refused with
    /// `FrameTooSmall` — the checked-refusal half of the OSR contract.
    #[test]
    fn short_frames_are_refused(
        frame in (0usize..6).prop_flat_map(frame_strategy),
        n in 6u16..12,
    ) {
        let p = OsrPoint::identity(0, 0, n);
        prop_assert!(matches!(
            p.map_to_optimized(&frame, n),
            Err(OsrError::FrameTooSmall { .. })
        ));
        prop_assert!(matches!(
            p.map_to_baseline(&frame, n),
            Err(OsrError::FrameTooSmall { .. })
        ));
    }

    /// `OsrMap::new` accepts a point list exactly when no two points share
    /// a pc on either side, and the accepted map answers both lookups.
    #[test]
    fn map_construction_rejects_exactly_duplicates(
        pcs in prop::collection::vec((0u32..6, 0u32..6), 0..6),
    ) {
        let points: Vec<OsrPoint> =
            pcs.iter().map(|&(b, o)| OsrPoint::identity(b, o, 2)).collect();
        let mut base: Vec<u32> = pcs.iter().map(|p| p.0).collect();
        let mut opt: Vec<u32> = pcs.iter().map(|p| p.1).collect();
        base.sort_unstable();
        base.dedup();
        opt.sort_unstable();
        opt.dedup();
        let unique = base.len() == pcs.len() && opt.len() == pcs.len();
        match OsrMap::new(points) {
            Ok(map) => {
                prop_assert!(unique);
                prop_assert_eq!(map.len(), pcs.len());
                prop_assert!(map.validate(2, 2).is_ok());
                for &(b, o) in &pcs {
                    prop_assert_eq!(map.entry_at_baseline(b).unwrap().opt_pc, o);
                    prop_assert_eq!(map.exit_at_opt(o).unwrap().baseline_pc, b);
                }
            }
            Err(e) => {
                prop_assert!(!unique);
                prop_assert_eq!(e, OsrError::DuplicatePoint);
            }
        }
    }
}
