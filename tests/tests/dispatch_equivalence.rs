//! Dispatch equivalence: the pre-decoded threaded interpreter
//! (`VmConfig::decode = true`, the default) and the legacy per-step
//! `match` loop must be **observationally indistinguishable** on the
//! simulated clock. Pre-decoding is a pure wall-clock optimization
//! (DESIGN.md §13): every charged cycle, sample, counter, OSR event,
//! recovery event and flight-recorder timestamp must be bit-identical
//! between the two paths, across the same adaptive matrix the
//! differential oracle sweeps — and across randomly generated fuzz
//! programs, where the superinstruction fusion table meets operand
//! shapes the curated suite never produces.
//!
//! Structure mirrors `differential_oracle.rs`: same shrunken workloads,
//! same prime sample period / low thresholds, same `AOCI_JOBS` sweep
//! pool with assertions in canonical order. The one new axis is
//! `vm.decode`, flipped per cell and compared cell-by-cell.

use aoci_aos::{AosConfig, AosReport, AosSystem, FaultConfig, TraceConfig};
use aoci_bench::EnvConfig;
use aoci_core::PolicyKind;
use aoci_vm::{CostModel, COMPONENTS};
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

/// A shrunken suite workload, long enough to cross the OSR back-edge
/// threshold used below (same shape as the differential oracle's).
fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 120;
    spec
}

/// One adaptive configuration, identical to the differential oracle's
/// except for the dispatch mode under test.
fn config(policy: PolicyKind, osr: bool, fault: Option<FaultConfig>, decode: bool) -> AosConfig {
    let mut c = AosConfig::new(policy).enable_guard_monitoring();
    if osr {
        c = c.enable_osr();
    }
    if let Some(f) = fault {
        c = c.enable_faults(f);
    }
    c.cost = CostModel { sample_period: 2_003, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.vm.osr_backedge_threshold = 48;
    c.vm.decode = decode;
    c
}

fn run(program: &aoci_ir::Program, c: AosConfig) -> AosReport {
    AosSystem::new(program, c).run().expect("adaptive run succeeds")
}

/// Asserts a decoded-dispatch report equals a legacy-dispatch report,
/// field by field, on every simulated-clock observable.
fn assert_identical(dec: &AosReport, leg: &AosReport, what: &str) {
    assert_eq!(dec.result, leg.result, "{what}: result differs across dispatch modes");
    assert_eq!(dec.total_cycles(), leg.total_cycles(), "{what}: cycle totals differ");
    for c in COMPONENTS {
        assert_eq!(
            dec.clock.component(c),
            leg.clock.component(c),
            "{what}: component {c} cycles differ"
        );
    }
    assert_eq!(dec.samples, leg.samples, "{what}: sample counts differ");
    assert_eq!(dec.counters, leg.counters, "{what}: exec counters differ");
    assert_eq!(dec.osr, leg.osr, "{what}: OSR events differ");
    assert_eq!(dec.recovery, leg.recovery, "{what}: recovery events differ");
    assert_eq!(dec.async_compile, leg.async_compile, "{what}: async ledgers differ");
    assert_eq!(dec.opt_compilations, leg.opt_compilations, "{what}: compilations differ");
    assert_eq!(dec.optimized_code_size, leg.optimized_code_size, "{what}: code size differs");
    assert_eq!(dec.dcg_entries, leg.dcg_entries, "{what}: DCG sizes differ");
    assert_eq!(dec.final_rules, leg.final_rules, "{what}: rule counts differ");
}

/// The policy × ±OSR × ±chaos matrix, canonical order.
fn matrix(policies: &[PolicyKind], seed: u64) -> Vec<(PolicyKind, bool, Option<FaultConfig>)> {
    let mut m = Vec::new();
    for &policy in policies {
        for osr in [false, true] {
            for fault in [None, Some(FaultConfig::chaos(seed))] {
                m.push((policy, osr, fault));
            }
        }
    }
    m
}

/// Runs `name`'s full matrix once per dispatch mode and compares the
/// aggregate reports cell-by-cell.
fn check_workload(name: &str, policies: &[PolicyKind]) {
    let env = EnvConfig::from_env();
    let seed = env.oracle_seed;
    let w = build(&small(name));
    let cells = matrix(policies, seed);
    let results = env.pool().map(cells.clone(), |(policy, osr, fault)| {
        let dec = run(&w.program, config(*policy, *osr, fault.clone(), true));
        let leg = run(&w.program, config(*policy, *osr, fault.clone(), false));
        (dec, leg)
    });
    for ((policy, osr, fault), (dec, leg)) in cells.iter().zip(results) {
        let what = format!("{name}/{policy}/osr={osr}/fault={}/seed={seed}", fault.is_some());
        assert_identical(&dec, &leg, &what);
    }
}

#[test]
fn sweep_compress_all_policies() {
    check_workload(
        "compress",
        &[
            PolicyKind::ContextInsensitive,
            PolicyKind::Fixed { max: 3 },
            PolicyKind::AdaptiveResolving { max: 3 },
        ],
    );
}

#[test]
fn sweep_db() {
    check_workload("db", &[PolicyKind::Fixed { max: 3 }]);
}

#[test]
fn sweep_mtrt() {
    check_workload("mtrt", &[PolicyKind::AdaptiveResolving { max: 3 }]);
}

#[test]
fn sweep_hashmap_motivation() {
    let env = EnvConfig::from_env();
    let program = aoci_workloads::hashmap_test(600);
    let cells = matrix(&[PolicyKind::Fixed { max: 3 }], env.oracle_seed);
    let results = env.pool().map(cells.clone(), |(policy, osr, fault)| {
        let dec = run(&program, config(*policy, *osr, fault.clone(), true));
        let leg = run(&program, config(*policy, *osr, fault.clone(), false));
        (dec, leg)
    });
    for ((_, osr, fault), (dec, leg)) in cells.iter().zip(results) {
        assert_identical(&dec, &leg, &format!("hashmap/osr={osr}/fault={}", fault.is_some()));
    }
}

/// The flight recorder sees through dispatch modes: a traced run under
/// decoded dispatch must produce the **byte-identical event stream** —
/// same events, same order, same simulated-cycle timestamps, same
/// rendered lines and Chrome export — as a traced run under the legacy
/// loop. Timestamps come from the simulated clock, so any drift in when
/// a cycle is charged relative to an event site shows up here first.
#[test]
fn traced_streams_are_byte_identical() {
    let env = EnvConfig::from_env();
    let seed = env.oracle_seed;
    let w = build(&small("compress"));
    let resolve = |m: aoci_ir::MethodId| w.program.method(m).name().to_string();
    let policies = [
        PolicyKind::ContextInsensitive,
        PolicyKind::Fixed { max: 3 },
        PolicyKind::AdaptiveResolving { max: 3 },
    ];
    // OSR + chaos on, so the stream covers promotion, deopt and recovery.
    let traced = |policy, decode| {
        config(policy, true, Some(FaultConfig::chaos(seed)), decode)
            .enable_trace_with(TraceConfig::default())
    };
    let runs = env.pool().map(policies.to_vec(), |&policy| {
        let dec = run(&w.program, traced(policy, true));
        let leg = run(&w.program, traced(policy, false));
        (dec, leg)
    });
    for (policy, (dec, leg)) in policies.into_iter().zip(runs) {
        let what = format!("traced compress/{policy}/seed={seed}");
        assert_identical(&dec, &leg, &what);
        let (log_d, log_l) = (dec.trace_log.as_ref().unwrap(), leg.trace_log.as_ref().unwrap());
        assert_eq!(log_d.emitted, log_l.emitted, "{what}: emitted counts differ");
        assert_eq!(log_d.dropped, log_l.dropped, "{what}: dropped counts differ");
        assert_eq!(
            log_d.render_lines(&resolve),
            log_l.render_lines(&resolve),
            "{what}: rendered event streams differ across dispatch modes"
        );
        assert_eq!(
            log_d.to_chrome_string(&resolve),
            log_l.to_chrome_string(&resolve),
            "{what}: Chrome exports differ across dispatch modes"
        );
    }
}

/// Fuzz-generated programs through the full differential matrix in both
/// dispatch modes: findings, and the coverage fingerprint read from the
/// traced cells, must agree case-by-case. Generated programs reach
/// operand shapes (degenerate bodies, megamorphic sites, unwind-style
/// control flow) where the fusion table meets pairs the curated suite
/// never forms, so this is the widest net for a fused handler that
/// charges or branches differently from its two-instruction expansion.
#[test]
fn fuzz_cases_agree_across_dispatch_modes() {
    let env = EnvConfig::from_env();
    let seed = env.fuzz_seed;
    let cases: Vec<usize> = (0..50).collect();
    let outcomes = env.pool().map(cases, |&i| {
        let spec = aoci_fuzz::sample_spec(seed, i);
        let dec = aoci_fuzz::run_case_with_decode(&spec, true);
        let leg = aoci_fuzz::run_case_with_decode(&spec, false);
        (i, dec, leg)
    });
    for (i, dec, leg) in outcomes {
        let what = format!("fuzz case {i} (campaign seed {seed})");
        assert!(
            dec.clean(),
            "{what}: decoded dispatch produced findings: {:?}",
            dec.findings
        );
        assert!(
            leg.clean(),
            "{what}: legacy dispatch produced findings: {:?}",
            leg.findings
        );
        assert_eq!(
            dec.fingerprint, leg.fingerprint,
            "{what}: coverage fingerprints differ across dispatch modes"
        );
    }
}
