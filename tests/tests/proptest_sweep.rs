//! Property-based tests on the sweep harness's job ordering: the job list
//! is a **pure function** of the (workload, policy, rep) extents, fully
//! independent of worker count, scheduling, or anything else — which is
//! the first of the three ordering layers behind byte-identical
//! `results/grid.json` output (see `crates/bench/src/grid.rs`).

use aoci_bench::{job_list, SweepJob};
use aoci_core::JobPool;
use proptest::prelude::*;

/// The full (workload × policy) cross product in canonical order.
fn cross(nw: usize, np: usize) -> Vec<(usize, usize)> {
    let mut cells = Vec::with_capacity(nw * np);
    for w in 0..nw {
        for p in 0..np {
            cells.push((w, p));
        }
    }
    cells
}

proptest! {
    /// For a full cross product, the job at index `i` is determined by
    /// arithmetic alone: workload-major, policy next, rep minor.
    #[test]
    fn job_index_is_pure_arithmetic(nw in 1usize..6, np in 1usize..6, reps in 1usize..5) {
        let jobs = job_list(&cross(nw, np), reps);
        prop_assert_eq!(jobs.len(), nw * np * reps);
        for (i, job) in jobs.iter().enumerate() {
            let expected = SweepJob {
                workload: i / (np * reps),
                policy: (i / reps) % np,
                rep: i % reps,
            };
            prop_assert_eq!(*job, expected, "index {}", i);
        }
    }

    /// The list is an exact enumeration: every (workload, policy, rep)
    /// triple appears exactly once, in strictly increasing canonical
    /// (lexicographic) order — no duplicates, no holes, no reordering.
    #[test]
    fn job_list_enumerates_each_triple_once(nw in 1usize..6, np in 1usize..6, reps in 1usize..5) {
        let jobs = job_list(&cross(nw, np), reps);
        let triples: Vec<_> = jobs.iter().map(|j| (j.workload, j.policy, j.rep)).collect();
        let mut sorted = triples.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&triples, &sorted, "canonical order is sorted + duplicate-free");
        prop_assert_eq!(triples.len(), nw * np * reps);
    }

    /// Rebuilding from the same extents yields the identical list, and a
    /// restriction to a subset of cells preserves the relative order of
    /// the surviving jobs (the cache-miss sweep is a filtered sweep).
    #[test]
    fn job_list_is_deterministic_and_restriction_is_a_subsequence(
        nw in 1usize..5,
        np in 1usize..5,
        reps in 1usize..4,
        keep in prop::collection::vec(any::<bool>(), 16..25),
    ) {
        let cells = cross(nw, np);
        prop_assert_eq!(job_list(&cells, reps), job_list(&cells, reps));
        let subset: Vec<_> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| keep[i % keep.len()])
            .map(|(_, &c)| c)
            .collect();
        let full = job_list(&cells, reps);
        let restricted = job_list(&subset, reps);
        // Every restricted job appears in the full list, in the same
        // relative order (subsequence check).
        let mut it = full.iter();
        for job in &restricted {
            prop_assert!(
                it.any(|j| j == job),
                "restricted job {:?} out of order w.r.t. the full list", job
            );
        }
    }

    /// The pool returns results in job-list order for any worker count:
    /// mapping the identity over a job list reproduces the list itself,
    /// whether the pool ran serially or across threads.
    #[test]
    fn pool_preserves_job_order(
        nw in 1usize..4,
        np in 1usize..4,
        reps in 1usize..4,
        workers in 1usize..9,
    ) {
        let jobs = job_list(&cross(nw, np), reps);
        let echoed = JobPool::new(workers).map(jobs.clone(), |&j| j);
        prop_assert_eq!(echoed, jobs);
    }
}
