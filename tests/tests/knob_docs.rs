//! The EXPERIMENTS.md knob table is generated, not written: the block
//! between the `knob-table:begin/end` markers must be the verbatim
//! output of `diag --knobs --md` (i.e. [`EnvConfig::knob_markdown`]).
//! This test regenerates it and fails on any drift — the doc-side half
//! of the "declared once in `aoci_bench::env`" contract (the CI
//! `parallel-sweep` job greps the code side).

use aoci_bench::EnvConfig;
use std::path::Path;

const BEGIN: &str = "<!-- knob-table:begin";
const END: &str = "<!-- knob-table:end -->";

#[test]
fn experiments_knob_table_matches_the_registry() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../EXPERIMENTS.md");
    let doc = std::fs::read_to_string(&path).expect("EXPERIMENTS.md is readable");

    let begin = doc.find(BEGIN).expect("EXPERIMENTS.md has the knob-table:begin marker");
    let table_start = begin + doc[begin..].find('\n').expect("marker line ends") + 1;
    let end = doc.find(END).expect("EXPERIMENTS.md has the knob-table:end marker");
    assert!(table_start < end, "begin marker must precede the end marker");
    let documented = &doc[table_start..end];

    let generated = EnvConfig::knob_markdown();
    assert_eq!(
        documented, generated,
        "EXPERIMENTS.md knob table drifted from the registry — \
         regenerate the marker block with `diag --knobs --md`"
    );
}

#[test]
fn every_knob_appears_exactly_once_in_the_generated_table() {
    let table = EnvConfig::knob_markdown();
    for row in EnvConfig::knob_rows() {
        let name = &row[0];
        assert_eq!(
            table.matches(&format!("`{name}`")).count(),
            1,
            "knob {name} must appear exactly once"
        );
    }
}
