//! Property-based tests on the fuzzing pipeline (DESIGN.md §12): the
//! generator's validity guarantee (every normalized spec — including
//! out-of-range inputs — builds a program that typechecks), the
//! minimizer's monotonicity and termination, and the sampler's purity.

use aoci_fuzz::{measure, minimize, sample_spec, shrink_candidates};
use aoci_workloads::{build_fuzz, FuzzSpec};
use proptest::prelude::*;

/// An arbitrary spec, deliberately allowed OUTSIDE the sampler's ranges
/// (oversized counts, fraction pairs that sum past 1.0) — `normalized()`
/// must absorb all of it.
fn arb_spec() -> impl Strategy<Value = FuzzSpec> {
    let counts = [
        1usize..5,  // layers
        1usize..6,  // methods_per_layer
        1usize..5,  // calls_per_method
        0usize..4,  // families
        0usize..8,  // impls_per_family (below the generator's own floor of 2)
        0usize..64, // chain_depth (past the normalizer's clamp of 32)
        0usize..8,  // chain_override_stride (0 is out of range; normalized to 1)
        0usize..64, // megamorphic_impls (past the clamp of 32)
        1usize..5,  // top_sites
        0usize..64, // recursion_depth (past the clamp of 32)
        1usize..80, // iterations
    ];
    let fractions = [
        0.0f64..1.5, // virtual_fraction (past 1.0; clamped)
        0.0f64..1.5, // context_correlation (past 1.0; clamped)
        0.0f64..1.0, // parameterless_fraction
        0.0f64..1.0, // instance_middle_fraction
        0.0f64..1.0, // unwind_fraction
        0.0f64..0.9, // tiny_fraction (tiny+huge may sum past 1.0; rescaled)
        0.0f64..0.9, // huge_fraction
    ];
    (0u64..1 << 53, counts, fractions).prop_map(|(seed, c, f)| {
        let mut s = FuzzSpec::minimal("prop", seed);
        s.layers = c[0];
        s.methods_per_layer = c[1];
        s.calls_per_method = c[2];
        s.families = c[3];
        s.impls_per_family = c[4];
        s.chain_depth = c[5];
        s.chain_override_stride = c[6];
        s.megamorphic_impls = c[7];
        s.top_sites = c[8];
        s.recursion_depth = c[9] as i64;
        s.iterations = c[10] as i64;
        s.virtual_fraction = f[0];
        s.context_correlation = f[1];
        s.parameterless_fraction = f[2];
        s.instance_middle_fraction = f[3];
        s.unwind_fraction = f[4];
        s.tiny_fraction = f[5];
        s.huge_fraction = f[6];
        s
    })
}

proptest! {
    /// The generator's core contract: any spec — even one far outside the
    /// sampler's ranges — normalizes to a program that builds and passes
    /// the IR typechecker. (`build_fuzz` normalizes internally and runs
    /// `validate`; verifying again here pins the public-path guarantee.)
    #[test]
    fn generated_programs_always_validate_and_typecheck(spec in arb_spec()) {
        let program = build_fuzz(&spec).expect("build_fuzz accepts any normalized spec").program;
        aoci_ir::typecheck::verify(&program).expect("generated program typechecks");
    }

    /// Shrinking is strictly monotone: every candidate measures smaller
    /// than its parent, which is what guarantees minimize() terminates.
    #[test]
    fn shrink_candidates_are_strictly_monotone(spec in arb_spec()) {
        let m = measure(&spec);
        for c in shrink_candidates(&spec) {
            prop_assert!(measure(&c) < m, "candidate {:?} not below {}", c, m);
        }
    }

    /// Termination and soundness of greedy minimization under an
    /// arbitrary (pure) predicate: the result still fails if the input
    /// did, and a failing result admits no failing shrink candidate.
    #[test]
    fn minimize_terminates_on_arbitrary_predicates(spec in arb_spec(), threshold in 0u64..400) {
        let fails = |s: &FuzzSpec| measure(s) > threshold;
        let min = minimize(&spec, fails);
        if fails(&spec.clone().normalized()) {
            prop_assert!(fails(&min), "minimize lost the failure");
            for c in shrink_candidates(&min) {
                prop_assert!(!fails(&c), "greedy fixpoint not reached: {:?}", c);
            }
        } else {
            prop_assert_eq!(min, spec.normalized());
        }
    }

    /// The sampler is a pure function of (campaign seed, index): the same
    /// coordinates always give the same spec, and its inner seed stays
    /// within f64-lossless range so persistence round-trips.
    #[test]
    fn sampler_is_pure_and_f64_safe(seed in 0u64..1 << 32, index in 0usize..10_000) {
        let a = sample_spec(seed, index);
        prop_assert_eq!(&a, &sample_spec(seed, index));
        prop_assert!(a.seed < (1 << 53));
        prop_assert!(a.fractions_valid());
    }
}
