//! End-to-end integration: every context-sensitivity policy must preserve
//! program semantics on real (generated) workloads, and the adaptive
//! system's reports must be internally consistent.

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_vm::{Component, CostModel, Vm};
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

/// A shrunken suite workload: same structure, short run (tests run in
/// debug mode).
fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 400;
    spec
}

fn baseline_result(program: &aoci_ir::Program) -> Option<aoci_vm::Value> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    Vm::new(program, cost)
        .run_to_completion()
        .expect("baseline run succeeds")
}

fn all_policies(max: u8) -> Vec<PolicyKind> {
    let mut v = vec![PolicyKind::ContextInsensitive];
    v.extend(PolicyKind::evaluated(max));
    v.push(PolicyKind::AdaptiveResolving { max });
    v
}

#[test]
fn every_policy_preserves_semantics_on_jess() {
    let w = build(&small("jess"));
    let expected = baseline_result(&w.program);
    for policy in all_policies(3) {
        let report = AosSystem::new(&w.program, AosConfig::new(policy))
            .run()
            .unwrap_or_else(|e| panic!("{policy} faulted: {e}"));
        assert_eq!(report.result, expected, "policy {policy} changed semantics");
    }
}

#[test]
fn every_policy_preserves_semantics_on_db_and_mtrt() {
    for name in ["db", "mtrt"] {
        let w = build(&small(name));
        let expected = baseline_result(&w.program);
        for policy in all_policies(4) {
            let report = AosSystem::new(&w.program, AosConfig::new(policy))
                .run()
                .unwrap_or_else(|e| panic!("{name}/{policy} faulted: {e}"));
            assert_eq!(report.result, expected, "{name}/{policy} changed semantics");
        }
    }
}

#[test]
fn phase_shift_workload_is_sound_with_and_without_decay() {
    let mut spec = small("jbb");
    spec.iterations = 600;
    let w = build(&spec);
    let expected = baseline_result(&w.program);
    for decay in [0.95, 1.0] {
        let mut config = AosConfig::new(PolicyKind::Fixed { max: 3 });
        config.decay_factor = decay;
        let report = AosSystem::new(&w.program, config).run().expect("runs");
        assert_eq!(report.result, expected);
    }
}

#[test]
fn reports_are_internally_consistent() {
    let w = build(&small("jack"));
    let report = AosSystem::new(&w.program, AosConfig::new(PolicyKind::Fixed { max: 3 }))
        .run()
        .expect("runs");
    // Component fractions sum to 1 (everything is accounted somewhere).
    let total: f64 = aoci_vm::COMPONENTS
        .iter()
        .map(|&c| report.fraction(c))
        .sum();
    assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    // Current resident optimized code cannot exceed cumulative.
    assert!(report.current_optimized_size <= report.optimized_code_size);
    // Guard misses cannot exceed checks.
    assert!(report.counters.guard_misses <= report.counters.guard_checks);
    // Compile cycles reported match the clock's compilation component.
    assert_eq!(
        report.compile_cycles(),
        report.clock.component(Component::CompilationThread)
    );
    // The compilation log matches the registry count.
    assert_eq!(report.compilations.len() as u32, report.opt_compilations);
}

#[test]
fn runs_are_deterministic() {
    let w = build(&small("compress"));
    let a = AosSystem::new(&w.program, AosConfig::new(PolicyKind::Fixed { max: 3 }))
        .run()
        .expect("runs");
    let b = AosSystem::new(&w.program, AosConfig::new(PolicyKind::Fixed { max: 3 }))
        .run()
        .expect("runs");
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.optimized_code_size, b.optimized_code_size);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.opt_compilations, b.opt_compilations);
    assert_eq!(a.result, b.result);
}

#[test]
fn deeper_fixed_policies_walk_more_frames() {
    let w = build(&small("javac"));
    let frames_at = |max: u8| {
        AosSystem::new(&w.program, AosConfig::new(PolicyKind::Fixed { max }))
            .run()
            .expect("runs")
            .frames_walked
    };
    let f2 = frames_at(2);
    let f5 = frames_at(5);
    assert!(
        f5 > f2,
        "fixed(5) should walk more frames than fixed(2): {f5} vs {f2}"
    );
}

#[test]
fn early_termination_reduces_walked_frames() {
    let w = build(&small("jack"));
    let frames = |policy| {
        AosSystem::new(&w.program, AosConfig::new(policy))
            .run()
            .expect("runs")
            .frames_walked
    };
    let fixed = frames(PolicyKind::Fixed { max: 5 });
    let hybrid = frames(PolicyKind::ParameterlessLarge { max: 5 });
    assert!(
        hybrid < fixed,
        "hybrid2 must terminate walks early: {hybrid} vs fixed {fixed}"
    );
}
