//! Asserts the paper's Figure 1/2 motivating property on the HashMapTest
//! program: context-insensitive profiling inlines both `hashCode`
//! implementations at the ambiguous site (or neither), while
//! context-sensitive profiling inlines exactly the right implementation per
//! `runTest` call site.

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_ir::Program;
use aoci_opt::InlineDecision;
use aoci_workloads::hashmap_test;

fn run(program: &Program, policy: PolicyKind) -> (Option<i64>, Vec<InlineDecision>) {
    let mut config = AosConfig::new(policy);
    config.cost.sample_period = 20_000;
    let (report, db) = AosSystem::new(program, config)
        .run_detailed()
        .expect("hashmap test runs");
    let decisions = db.decision_log().iter().map(|(_, d)| d.clone()).collect();
    (report.result.and_then(|v| v.as_int()), decisions)
}

fn hash_decisions<'d>(
    program: &Program,
    decisions: &'d [InlineDecision],
) -> Vec<&'d InlineDecision> {
    decisions
        .iter()
        .filter(|d| program.method(d.callee).name().ends_with(".hashCode"))
        .collect()
}

#[test]
fn context_sensitivity_disambiguates_hashcode_targets() {
    let program = hashmap_test(40_000);
    let my_hash = program.method_by_name("MyKey.hashCode").unwrap();
    let obj_hash = program.method_by_name("Object.hashCode").unwrap();
    let run_test = program.method_by_name("runTest").unwrap();

    let (ci_result, ci_decisions) = run(&program, PolicyKind::ContextInsensitive);
    let (cs_result, cs_decisions) = run(&program, PolicyKind::Fixed { max: 3 });
    assert_eq!(ci_result, cs_result, "policies must agree on the result");
    assert!(ci_result.is_some());

    // CI: the hashCode site's profile is a 50/50 split, so any compilation
    // that inlines there inlines both implementations in the *same*
    // compilation context.
    let ci_hash = hash_decisions(&program, &ci_decisions);
    assert!(!ci_hash.is_empty(), "cins should inline hashCode somewhere");
    use std::collections::HashMap;
    let mut ci_by_ctx: HashMap<_, Vec<_>> = HashMap::new();
    for d in &ci_hash {
        ci_by_ctx.entry(d.context.clone()).or_default().push(d.callee);
    }
    assert!(
        ci_by_ctx.values().any(|callees| {
            callees.contains(&my_hash) && callees.contains(&obj_hash)
        }),
        "cins inlines both implementations at the ambiguous site: {ci_by_ctx:?}"
    );

    // CS: within contexts that reach back to runTest, each call site gets
    // exactly its own implementation.
    let cs_hash = hash_decisions(&program, &cs_decisions);
    let deep: Vec<_> = cs_hash.iter().filter(|d| d.context.len() >= 2).collect();
    assert!(
        !deep.is_empty(),
        "context-sensitive run should inline hashCode under runTest context"
    );
    for d in &deep {
        // Find the runTest level of the context.
        let rt = d
            .context
            .iter()
            .find(|cs| cs.method == run_test)
            .unwrap_or_else(|| panic!("context reaches runTest: {:?}", d.context));
        let expected = if rt.site.index() == 0 { my_hash } else { obj_hash };
        assert_eq!(
            d.callee,
            expected,
            "site runTest@{} must inline its own target",
            rt.site.index()
        );
    }
    // And both specialised variants exist (one per site).
    assert!(deep.iter().any(|d| d.callee == my_hash));
    assert!(deep.iter().any(|d| d.callee == obj_hash));
}

#[test]
fn hashmap_result_is_correct() {
    // 1 + 2 per iteration.
    let iters = 5_000;
    let program = hashmap_test(iters);
    let (result, _) = run(&program, PolicyKind::ContextInsensitive);
    assert_eq!(result, Some(3 * iters));
}
