//! Property-based testing of the pre-decoded instruction form
//! (DESIGN.md §13). The decoded representation retains every source
//! identifier alongside its resolved offset/layout, so decoding must be
//! **losslessly invertible** — `encode ∘ decode` is the identity on any
//! valid method body — and superinstruction fusion is a pure dispatch
//! overlay: it never changes which cycles are charged, in what order, or
//! where branches land.
//!
//! Program shapes come from the fuzz generator
//! ([`aoci_workloads::build_fuzz`] over sampled
//! [`FuzzSpec`](aoci_workloads::FuzzSpec)s), which reaches field/array
//! traffic, inheritance chains, megamorphic sites and unwind-style
//! control flow the curated suite never forms, plus the curated suite
//! itself as a fixed corpus.

use aoci_ir::{decode_body, encode_body, fused_kind, fusion_plan, DecodedOp, Program};
use aoci_vm::{CostModel, Value, Vm, VmConfig, VmError};
use aoci_workloads::{build, suite};
use proptest::prelude::*;

/// Draws a generated program as a pure function of (campaign seed, case
/// index) — the same sampler the fuzz campaign uses, so every shape its
/// spec space covers is reachable here.
fn fuzz_program(seed: u64, index: usize) -> Program {
    let spec = aoci_fuzz::sample_spec(seed, index);
    aoci_workloads::build_fuzz(&spec).expect("sampled spec builds").program
}

/// decode ∘ encode identity over one whole program.
fn assert_roundtrip(program: &Program, what: &str) {
    for m in program.methods() {
        let decoded = decode_body(m.body(), program);
        assert_eq!(
            encode_body(&decoded),
            m.body(),
            "{what}: encode(decode(body)) != body for method {}",
            m.name()
        );
    }
}

/// Every decoded branch target is an absolute pc inside its body (the
/// decoded layout is 1:1 with the source body, so decoded pc == source
/// pc and the legacy bounds argument carries over verbatim).
fn assert_targets_in_range(program: &Program, what: &str) {
    for m in program.methods() {
        let decoded = decode_body(m.body(), program);
        let len = decoded.len();
        for (pc, op) in decoded.iter().enumerate() {
            let targets: Vec<u32> = match op {
                DecodedOp::Jump { target } => vec![*target],
                DecodedOp::Branch { target, .. } => vec![*target],
                DecodedOp::GuardClass { else_target, .. } => vec![*else_target],
                DecodedOp::GuardMethod { target: _, else_target, .. } => vec![*else_target],
                _ => Vec::new(),
            };
            for t in targets {
                assert!(
                    (t as usize) < len,
                    "{what}: {}@{pc} resolves to target {t} outside body of {len}",
                    m.name()
                );
            }
        }
    }
}

/// The fusion plan is exactly the static pair table applied position by
/// position: one entry per instruction, entry `i` agreeing with
/// [`fused_kind`] on the pair `(i, i+1)`, and necessarily `None` at the
/// last instruction.
fn assert_plan_consistent(program: &Program, what: &str) {
    for m in program.methods() {
        let decoded = decode_body(m.body(), program);
        let plan = fusion_plan(&decoded);
        assert_eq!(plan.len(), decoded.len(), "{what}: plan length mismatch in {}", m.name());
        for (i, entry) in plan.iter().enumerate() {
            let expect = decoded.get(i + 1).and_then(|b| fused_kind(&decoded[i], b));
            assert_eq!(
                *entry,
                expect,
                "{what}: plan[{i}] disagrees with fused_kind in {}",
                m.name()
            );
        }
        if let Some(last) = plan.last() {
            assert_eq!(*last, None, "{what}: last instruction cannot head a pair in {}", m.name());
        }
    }
}

/// Faults reduced to kind, as in `proptest_compiler.rs`.
fn outcome(program: &Program, decode: bool) -> (Result<Option<Value>, String>, u64) {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    let mut vm = Vm::with_config(program, cost, VmConfig { decode, ..VmConfig::default() });
    let result = vm.run_to_completion().map_err(|e| {
        match e {
            VmError::NullDeref { .. } => "null",
            VmError::TypeError { .. } => "type",
            VmError::DivideByZero { .. } => "div0",
            VmError::IndexOutOfBounds { .. } => "bounds",
            VmError::NoSuchMethod { .. } => "nosuch",
            VmError::NegativeArrayLength { .. } => "neglen",
            VmError::StackOverflow { .. } => "overflow",
            VmError::BadRegister { .. } => "badreg",
            VmError::PcOutOfRange { .. } => "badpc",
            VmError::NoActiveFrame { .. } => "noframe",
        }
        .to_string()
    });
    (result, vm.clock().total())
}

/// Fusion never changes the charged cost: a full run charges exactly the
/// same simulated cycles — and the same exec counters — whether every
/// basic block executes through fused superinstructions or one plain
/// `match` arm at a time. (A fused pair charges cost(A) then cost(B) at
/// the boundary, so per-block totals are preserved by construction; this
/// checks the construction end-to-end, faults included.)
fn assert_cost_invariant(program: &Program, what: &str) {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    let mut dec = Vm::with_config(program, cost.clone(), VmConfig::default());
    let mut leg = Vm::with_config(program, cost, VmConfig { decode: false, ..VmConfig::default() });
    let r_dec = dec.run_to_completion();
    let r_leg = leg.run_to_completion();
    assert_eq!(
        r_dec.is_ok(),
        r_leg.is_ok(),
        "{what}: outcome kind differs across dispatch modes"
    );
    assert_eq!(
        dec.clock().total(),
        leg.clock().total(),
        "{what}: charged cycles differ across dispatch modes"
    );
    assert_eq!(
        dec.counters(),
        leg.counters(),
        "{what}: exec counters differ across dispatch modes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode ∘ decode is the identity on every method body of a
    /// generated program.
    #[test]
    fn decode_roundtrips_fuzz_bodies(seed in 0u64..1u64 << 32, index in 0usize..256) {
        let program = fuzz_program(seed, index);
        assert_roundtrip(&program, &format!("fuzz seed={seed} index={index}"));
    }

    /// Branch-target resolution lands inside the body, and the fusion
    /// plan is the static table applied pointwise.
    #[test]
    fn targets_and_plan_are_well_formed(seed in 0u64..1u64 << 32, index in 0usize..256) {
        let program = fuzz_program(seed, index);
        let what = format!("fuzz seed={seed} index={index}");
        assert_targets_in_range(&program, &what);
        assert_plan_consistent(&program, &what);
    }

    /// Fusion never changes the total charged cost of any executed
    /// block: full-run cycle totals and counters match the legacy loop.
    #[test]
    fn fusion_preserves_charged_cost(seed in 0u64..1u64 << 32, index in 0usize..256) {
        let program = fuzz_program(seed, index);
        assert_cost_invariant(&program, &format!("fuzz seed={seed} index={index}"));
    }

    /// The VM-visible outcome (result value or fault kind) is identical
    /// across dispatch modes on generated programs.
    #[test]
    fn outcomes_agree_across_dispatch_modes(seed in 0u64..1u64 << 32, index in 0usize..256) {
        let program = fuzz_program(seed, index);
        let (r_dec, c_dec) = outcome(&program, true);
        let (r_leg, c_leg) = outcome(&program, false);
        prop_assert_eq!(r_dec, r_leg, "result differs (seed={}, index={})", seed, index);
        prop_assert_eq!(c_dec, c_leg, "cycles differ (seed={}, index={})", seed, index);
    }
}

/// The curated suite as a fixed corpus: every workload body round-trips,
/// resolves its targets, and carries a consistent fusion plan.
#[test]
fn suite_bodies_roundtrip_and_plan() {
    for spec in suite() {
        let w = build(&spec);
        assert_roundtrip(&w.program, &w.name);
        assert_targets_in_range(&w.program, &w.name);
        assert_plan_consistent(&w.program, &w.name);
    }
}
