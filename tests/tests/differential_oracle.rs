//! Differential oracle: every suite workload runs under a baseline-only VM
//! (the oracle) and under the adaptive system for each inliner policy, with
//! and without OSR, with and without fault injection. Every configuration
//! must (a) produce the oracle's program result — optimization, on-stack
//! replacement and recovery are never allowed to change semantics — and
//! (b) replay bit-identically: a same-seed rerun reproduces the exact cycle
//! counts, counters and event tallies, because the whole system runs on a
//! deterministic simulated clock.
//!
//! The fault seed comes from `AOCI_ORACLE_SEED` (default 1), so a CI matrix
//! can sweep seeds without touching the code; `AOCI_ASYNC=1` reruns the
//! whole matrix with the asynchronous background-compilation pool on — the
//! CI `async-smoke` job sweeps the same seeds through this switch. Both
//! knobs arrive through the unified [`EnvConfig`] (parsed once per test),
//! and each workload's policy × OSR × chaos matrix is executed across the
//! `AOCI_JOBS` sweep pool: every configuration is a pure `Send` job, and
//! the assertions walk the results in canonical matrix order, so the test
//! outcome — and the serialized reports, see `parallel_determinism.rs` —
//! is identical for any worker count.

use aoci_aos::{
    AosConfig, AosReport, AosSystem, AsyncCompileConfig, FaultConfig, OsrEvents, TraceConfig,
};
use aoci_bench::EnvConfig;
use aoci_core::PolicyKind;
use aoci_vm::{CostModel, Value, Vm, COMPONENTS};
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

/// A shrunken suite workload: same structure, short run (debug mode), but
/// long enough for the main loop to cross the OSR back-edge threshold the
/// configs below use.
fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 120;
    spec
}

/// The baseline-only oracle: a pure interpreter run, no sampling, no
/// optimization, no OSR — semantics by construction.
fn oracle_result(program: &aoci_ir::Program) -> Option<Value> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    Vm::new(program, cost)
        .run_to_completion()
        .expect("oracle run succeeds")
}

/// One adaptive configuration of the matrix. A prime sample period keeps
/// the deterministic sampler from aliasing against fixed loop costs, and a
/// low back-edge threshold lets the short runs exercise promotion.
fn config(policy: PolicyKind, osr: bool, fault: Option<FaultConfig>, env: &EnvConfig) -> AosConfig {
    let mut c = AosConfig::new(policy).enable_guard_monitoring();
    if osr {
        c = c.enable_osr();
    }
    if env.async_compile {
        c = c.enable_async_compile_with(AsyncCompileConfig::default());
    }
    if let Some(f) = fault {
        c = c.enable_faults(f);
    }
    c.cost = CostModel { sample_period: 2_003, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.vm.osr_backedge_threshold = 48;
    c
}

fn run(program: &aoci_ir::Program, c: AosConfig) -> AosReport {
    AosSystem::new(program, c).run().expect("adaptive run succeeds")
}

/// Asserts two same-seed runs are bit-identical, field by field.
fn assert_identical(a: &AosReport, b: &AosReport, what: &str) {
    assert_eq!(a.result, b.result, "{what}: result diverged between reruns");
    assert_eq!(a.total_cycles(), b.total_cycles(), "{what}: cycle totals diverged");
    for c in COMPONENTS {
        assert_eq!(
            a.clock.component(c),
            b.clock.component(c),
            "{what}: component {c} cycles diverged"
        );
    }
    assert_eq!(a.samples, b.samples, "{what}: sample counts diverged");
    assert_eq!(a.counters, b.counters, "{what}: exec counters diverged");
    assert_eq!(a.osr, b.osr, "{what}: OSR events diverged");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery events diverged");
    assert_eq!(a.async_compile, b.async_compile, "{what}: async compile ledgers diverged");
    assert_eq!(a.opt_compilations, b.opt_compilations, "{what}: compilations diverged");
    assert_eq!(a.optimized_code_size, b.optimized_code_size, "{what}: code size diverged");
    assert_eq!(a.dcg_entries, b.dcg_entries, "{what}: DCG sizes diverged");
    assert_eq!(a.final_rules, b.final_rules, "{what}: rule counts diverged");
}

const ALL_POLICIES: [PolicyKind; 3] = [
    PolicyKind::ContextInsensitive,
    PolicyKind::Fixed { max: 3 },
    PolicyKind::AdaptiveResolving { max: 3 },
];

/// The policy × ±OSR × ±chaos configuration matrix for one workload, in
/// canonical order (policy-major, then OSR, then fault).
fn matrix(policies: &[PolicyKind], seed: u64) -> Vec<(PolicyKind, bool, Option<FaultConfig>)> {
    let mut m = Vec::new();
    for &policy in policies {
        for osr in [false, true] {
            for fault in [None, Some(FaultConfig::chaos(seed))] {
                m.push((policy, osr, fault));
            }
        }
    }
    m
}

/// Runs `name` under each policy in `policies`, crossed with ±OSR and
/// ±fault injection, each twice — the whole matrix executed across the
/// `AOCI_JOBS` sweep pool, one (config, rerun) pair per job. The full
/// 3-policy cross on all eight workloads costs minutes of 1-core wall
/// clock, so only the cheapest workload gets `ALL_POLICIES`; the rest
/// rotate through single policies such that the suite as a whole still
/// covers every policy several times.
fn check_workload(name: &str, policies: &[PolicyKind]) {
    let env = EnvConfig::from_env();
    let seed = env.oracle_seed;
    let w = build(&small(name));
    let expected = oracle_result(&w.program);
    let cells = matrix(policies, seed);
    let results = env.pool().map(cells.clone(), |(policy, osr, fault)| {
        let a = run(&w.program, config(*policy, *osr, fault.clone(), &env));
        let b = run(&w.program, config(*policy, *osr, fault.clone(), &env));
        (a, b)
    });
    for ((policy, osr, fault), (a, b)) in cells.iter().zip(results) {
        let what =
            format!("{name}/{policy}/osr={osr}/fault={}/seed={seed}", fault.is_some());
        assert_eq!(a.result, expected, "{what}: diverged from the oracle");
        assert_identical(&a, &b, &what);
        if !osr {
            assert_eq!(
                a.osr,
                OsrEvents::default(),
                "{what}: OSR events recorded while disabled"
            );
        }
    }
}

#[test]
fn oracle_compress() {
    check_workload("compress", &ALL_POLICIES);
}

#[test]
fn oracle_jess() {
    check_workload("jess", &[PolicyKind::ContextInsensitive]);
}

#[test]
fn oracle_db() {
    check_workload("db", &[PolicyKind::Fixed { max: 3 }]);
}

#[test]
fn oracle_javac() {
    check_workload("javac", &[PolicyKind::AdaptiveResolving { max: 3 }]);
}

#[test]
fn oracle_mpegaudio() {
    check_workload("mpegaudio", &[PolicyKind::ContextInsensitive]);
}

#[test]
fn oracle_mtrt() {
    check_workload("mtrt", &[PolicyKind::Fixed { max: 3 }]);
}

#[test]
fn oracle_jack() {
    check_workload("jack", &[PolicyKind::AdaptiveResolving { max: 3 }]);
}

#[test]
fn oracle_jbb() {
    check_workload("jbb", &[PolicyKind::Fixed { max: 3 }]);
}

/// The flight recorder through the oracle: a same-seed rerun of a traced
/// configuration must emit a **bit-identical event stream** — same events,
/// same order, same simulated-cycle timestamps, same rendered bytes — and
/// turning the recorder on must not change a single metric relative to an
/// untraced run of the same configuration.
#[test]
fn oracle_traced_reruns_are_bit_identical() {
    let env = EnvConfig::from_env();
    let seed = env.oracle_seed;
    let w = build(&small("compress"));
    let resolve = |m: aoci_ir::MethodId| w.program.method(m).name().to_string();
    // OSR + chaos faults on, so the stream covers promotion, denial,
    // recovery and injection events, not just the steady-state loop.
    let traced = |policy| {
        config(policy, true, Some(FaultConfig::chaos(seed)), &env)
            .enable_trace_with(TraceConfig::default())
    };
    // Three runs per policy (two traced, one untraced), fanned out across
    // the sweep pool; assertions walk the results in policy order.
    let runs = env.pool().map(ALL_POLICIES.to_vec(), |&policy| {
        let a = run(&w.program, traced(policy));
        let b = run(&w.program, traced(policy));
        let untraced = run(&w.program, config(policy, true, Some(FaultConfig::chaos(seed)), &env));
        (a, b, untraced)
    });
    for (policy, (a, b, untraced)) in ALL_POLICIES.into_iter().zip(runs) {
        let what = format!("traced compress/{policy}/seed={seed}");
        assert_identical(&a, &b, &what);

        let (log_a, log_b) = (a.trace_log.as_ref().unwrap(), b.trace_log.as_ref().unwrap());
        assert_eq!(log_a.emitted, log_b.emitted, "{what}: emitted counts diverged");
        assert_eq!(log_a.dropped, log_b.dropped, "{what}: dropped counts diverged");
        assert_eq!(
            log_a.render_lines(&resolve),
            log_b.render_lines(&resolve),
            "{what}: rendered event streams diverged"
        );
        assert_eq!(
            log_a.to_chrome_string(&resolve),
            log_b.to_chrome_string(&resolve),
            "{what}: Chrome exports diverged"
        );
        assert!(
            log_a.kinds().len() >= 6,
            "{what}: expected >= 6 distinct event kinds, got {:?}",
            log_a.kinds()
        );

        // Zero-overhead: the traced run's metrics equal the untraced run's.
        // Only the post-mortem dump (which an untraced run cannot carry)
        // differs; every measured quantity must agree.
        let mut scrubbed = a.clone();
        scrubbed.recovery.trace_dump.clear();
        assert_identical(&scrubbed, &untraced, &format!("{what} vs untraced"));
    }
}

/// The Figure 1 motivating example through the same oracle.
#[test]
fn oracle_hashmap_motivation() {
    let env = EnvConfig::from_env();
    let program = aoci_workloads::hashmap_test(600);
    let expected = oracle_result(&program);
    let seed = env.oracle_seed;
    let cells = matrix(&[PolicyKind::Fixed { max: 3 }], seed);
    let results = env.pool().map(cells.clone(), |(policy, osr, fault)| {
        let a = run(&program, config(*policy, *osr, fault.clone(), &env));
        let b = run(&program, config(*policy, *osr, fault.clone(), &env));
        (a, b)
    });
    for ((_, osr, fault), (a, b)) in cells.iter().zip(results) {
        let what = format!("hashmap/osr={osr}/fault={}", fault.is_some());
        assert_eq!(a.result, expected, "{what}: diverged from the oracle");
        assert_identical(&a, &b, &what);
    }
}
