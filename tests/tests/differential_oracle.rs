//! Differential oracle: every suite workload runs under a baseline-only VM
//! (the oracle) and under the adaptive system for each inliner policy, with
//! and without OSR, with and without fault injection. Every configuration
//! must (a) produce the oracle's program result — optimization, on-stack
//! replacement and recovery are never allowed to change semantics — and
//! (b) replay bit-identically: a same-seed rerun reproduces the exact cycle
//! counts, counters and event tallies, because the whole system runs on a
//! deterministic simulated clock.
//!
//! The fault seed comes from `AOCI_ORACLE_SEED` (default 1), so a CI matrix
//! can sweep seeds without touching the code.

use aoci_aos::{
    AosConfig, AosReport, AosSystem, AsyncCompileConfig, FaultConfig, OsrEvents, TraceConfig,
};
use aoci_core::PolicyKind;
use aoci_vm::{CostModel, Value, Vm, COMPONENTS};
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

fn oracle_seed() -> u64 {
    std::env::var("AOCI_ORACLE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// `AOCI_ASYNC=1` reruns the whole oracle matrix with the asynchronous
/// background-compilation pool on (default worker/queue settings) — the CI
/// `async-smoke` job sweeps the same seeds through this switch.
fn async_enabled() -> bool {
    std::env::var("AOCI_ASYNC").is_ok_and(|s| !s.trim().is_empty() && s.trim() != "0")
}

/// A shrunken suite workload: same structure, short run (debug mode), but
/// long enough for the main loop to cross the OSR back-edge threshold the
/// configs below use.
fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 120;
    spec
}

/// The baseline-only oracle: a pure interpreter run, no sampling, no
/// optimization, no OSR — semantics by construction.
fn oracle_result(program: &aoci_ir::Program) -> Option<Value> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    Vm::new(program, cost)
        .run_to_completion()
        .expect("oracle run succeeds")
}

/// One adaptive configuration of the matrix. A prime sample period keeps
/// the deterministic sampler from aliasing against fixed loop costs, and a
/// low back-edge threshold lets the short runs exercise promotion.
fn config(policy: PolicyKind, osr: bool, fault: Option<FaultConfig>) -> AosConfig {
    let mut c = if osr { AosConfig::with_osr(policy) } else { AosConfig::new(policy) };
    c.cost = CostModel { sample_period: 2_003, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.vm.osr_backedge_threshold = 48;
    c.recovery.monitor_guard_health = true;
    c.fault = fault;
    if async_enabled() {
        c.async_compile = Some(AsyncCompileConfig::default());
    }
    c
}

fn run(program: &aoci_ir::Program, c: AosConfig) -> AosReport {
    AosSystem::new(program, c).run().expect("adaptive run succeeds")
}

/// Asserts two same-seed runs are bit-identical, field by field.
fn assert_identical(a: &AosReport, b: &AosReport, what: &str) {
    assert_eq!(a.result, b.result, "{what}: result diverged between reruns");
    assert_eq!(a.total_cycles(), b.total_cycles(), "{what}: cycle totals diverged");
    for c in COMPONENTS {
        assert_eq!(
            a.clock.component(c),
            b.clock.component(c),
            "{what}: component {c} cycles diverged"
        );
    }
    assert_eq!(a.samples, b.samples, "{what}: sample counts diverged");
    assert_eq!(a.counters, b.counters, "{what}: exec counters diverged");
    assert_eq!(a.osr, b.osr, "{what}: OSR events diverged");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery events diverged");
    assert_eq!(a.async_compile, b.async_compile, "{what}: async compile ledgers diverged");
    assert_eq!(a.opt_compilations, b.opt_compilations, "{what}: compilations diverged");
    assert_eq!(a.optimized_code_size, b.optimized_code_size, "{what}: code size diverged");
    assert_eq!(a.dcg_entries, b.dcg_entries, "{what}: DCG sizes diverged");
    assert_eq!(a.final_rules, b.final_rules, "{what}: rule counts diverged");
}

const ALL_POLICIES: [PolicyKind; 3] = [
    PolicyKind::ContextInsensitive,
    PolicyKind::Fixed { max: 3 },
    PolicyKind::AdaptiveResolving { max: 3 },
];

/// Runs `name` under each policy in `policies`, crossed with ±OSR and
/// ±fault injection, each twice. The full 3-policy cross on all eight
/// workloads costs minutes of 1-core wall clock, so only the cheapest
/// workload gets `ALL_POLICIES`; the rest rotate through single policies
/// such that the suite as a whole still covers every policy several times.
fn check_workload(name: &str, policies: &[PolicyKind]) {
    let seed = oracle_seed();
    let w = build(&small(name));
    let expected = oracle_result(&w.program);
    for &policy in policies {
        for osr in [false, true] {
            for fault in [None, Some(FaultConfig::chaos(seed))] {
                let what = format!(
                    "{name}/{policy}/osr={osr}/fault={}/seed={seed}",
                    fault.is_some()
                );
                let a = run(&w.program, config(policy, osr, fault.clone()));
                let b = run(&w.program, config(policy, osr, fault.clone()));
                assert_eq!(a.result, expected, "{what}: diverged from the oracle");
                assert_identical(&a, &b, &what);
                if !osr {
                    assert_eq!(
                        a.osr,
                        OsrEvents::default(),
                        "{what}: OSR events recorded while disabled"
                    );
                }
            }
        }
    }
}

#[test]
fn oracle_compress() {
    check_workload("compress", &ALL_POLICIES);
}

#[test]
fn oracle_jess() {
    check_workload("jess", &[PolicyKind::ContextInsensitive]);
}

#[test]
fn oracle_db() {
    check_workload("db", &[PolicyKind::Fixed { max: 3 }]);
}

#[test]
fn oracle_javac() {
    check_workload("javac", &[PolicyKind::AdaptiveResolving { max: 3 }]);
}

#[test]
fn oracle_mpegaudio() {
    check_workload("mpegaudio", &[PolicyKind::ContextInsensitive]);
}

#[test]
fn oracle_mtrt() {
    check_workload("mtrt", &[PolicyKind::Fixed { max: 3 }]);
}

#[test]
fn oracle_jack() {
    check_workload("jack", &[PolicyKind::AdaptiveResolving { max: 3 }]);
}

#[test]
fn oracle_jbb() {
    check_workload("jbb", &[PolicyKind::Fixed { max: 3 }]);
}

/// The flight recorder through the oracle: a same-seed rerun of a traced
/// configuration must emit a **bit-identical event stream** — same events,
/// same order, same simulated-cycle timestamps, same rendered bytes — and
/// turning the recorder on must not change a single metric relative to an
/// untraced run of the same configuration.
#[test]
fn oracle_traced_reruns_are_bit_identical() {
    let seed = oracle_seed();
    let w = build(&small("compress"));
    let resolve = |m: aoci_ir::MethodId| w.program.method(m).name().to_string();
    // OSR + chaos faults on, so the stream covers promotion, denial,
    // recovery and injection events, not just the steady-state loop.
    let traced = |policy| {
        let mut c = config(policy, true, Some(FaultConfig::chaos(seed)));
        c.trace = Some(TraceConfig::default());
        c
    };
    for policy in ALL_POLICIES {
        let what = format!("traced compress/{policy}/seed={seed}");
        let a = run(&w.program, traced(policy));
        let b = run(&w.program, traced(policy));
        assert_identical(&a, &b, &what);

        let (log_a, log_b) = (a.trace_log.as_ref().unwrap(), b.trace_log.as_ref().unwrap());
        assert_eq!(log_a.emitted, log_b.emitted, "{what}: emitted counts diverged");
        assert_eq!(log_a.dropped, log_b.dropped, "{what}: dropped counts diverged");
        assert_eq!(
            log_a.render_lines(&resolve),
            log_b.render_lines(&resolve),
            "{what}: rendered event streams diverged"
        );
        assert_eq!(
            log_a.to_chrome_string(&resolve),
            log_b.to_chrome_string(&resolve),
            "{what}: Chrome exports diverged"
        );
        assert!(
            log_a.kinds().len() >= 6,
            "{what}: expected >= 6 distinct event kinds, got {:?}",
            log_a.kinds()
        );

        // Zero-overhead: the traced run's metrics equal the untraced run's.
        // Only the post-mortem dump (which an untraced run cannot carry)
        // differs; every measured quantity must agree.
        let untraced = run(&w.program, config(policy, true, Some(FaultConfig::chaos(seed))));
        let mut scrubbed = a.clone();
        scrubbed.recovery.trace_dump.clear();
        assert_identical(&scrubbed, &untraced, &format!("{what} vs untraced"));
    }
}

/// The Figure 1 motivating example through the same oracle.
#[test]
fn oracle_hashmap_motivation() {
    let program = aoci_workloads::hashmap_test(600);
    let expected = oracle_result(&program);
    let seed = oracle_seed();
    for osr in [false, true] {
        for fault in [None, Some(FaultConfig::chaos(seed))] {
            let what = format!("hashmap/osr={osr}/fault={}", fault.is_some());
            let a = run(&program, config(PolicyKind::Fixed { max: 3 }, osr, fault.clone()));
            let b = run(&program, config(PolicyKind::Fixed { max: 3 }, osr, fault.clone()));
            assert_eq!(a.result, expected, "{what}: diverged from the oracle");
            assert_identical(&a, &b, &what);
        }
    }
}
