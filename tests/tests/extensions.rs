//! Integration tests for the extension subsystems: offline profiles, the
//! oracle match-mode ablation, the naive-stack-walk ablation and the
//! calling-context-tree backend.

use aoci_aos::{AosConfig, AosSystem, ProfileBackend};
use aoci_core::{MatchMode, PolicyKind};
use aoci_profile::SavedProfile;
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 400;
    spec
}

#[test]
fn offline_profile_round_trip_preserves_semantics() {
    let w = build(&small("mtrt"));
    let policy = PolicyKind::Fixed { max: 3 };
    let (cold_report, _, profile) = AosSystem::new(&w.program, AosConfig::new(policy))
        .run_full()
        .expect("training run succeeds");

    let saved = SavedProfile::from_entries(profile.iter().map(|(k, wt)| (k, *wt)));
    let json = saved.to_json().expect("serializes");
    let restored = SavedProfile::from_json(&json).expect("parses");
    assert_eq!(restored.traces.len(), saved.traces.len());

    let mut seeded = AosSystem::new(&w.program, AosConfig::new(policy));
    seeded.seed_profile(restored.entries());
    let seeded_report = seeded.run().expect("seeded run succeeds");
    assert_eq!(seeded_report.result, cold_report.result);
    // The seeded run starts with a full profile: rules exist from the first
    // organizer tick, so compilation decisions are at least as informed.
    assert!(seeded_report.opt_compilations > 0);
}

#[test]
fn exact_match_oracle_is_sound_but_weaker() {
    let w = build(&small("jess"));
    let mut partial_cfg = AosConfig::new(PolicyKind::Fixed { max: 3 });
    partial_cfg.match_mode = MatchMode::Partial;
    let mut exact_cfg = AosConfig::new(PolicyKind::Fixed { max: 3 });
    exact_cfg.match_mode = MatchMode::Exact;

    let (partial, partial_db) = AosSystem::new(&w.program, partial_cfg)
        .run_detailed()
        .expect("partial run");
    let (exact, exact_db) = AosSystem::new(&w.program, exact_cfg)
        .run_detailed()
        .expect("exact run");
    assert_eq!(partial.result, exact.result, "matching mode must not change semantics");
    // Exact matching can only use rules whose context length equals the
    // compilation context — typically far fewer profile-directed inlines.
    assert!(
        exact_db.decision_log().len() <= partial_db.decision_log().len(),
        "exact {} vs partial {}",
        exact_db.decision_log().len(),
        partial_db.decision_log().len()
    );
}

#[test]
fn naive_stack_walk_is_sound() {
    let w = build(&small("jack"));
    let mut cfg = AosConfig::new(PolicyKind::Fixed { max: 3 });
    cfg.vm.source_level_walk = false;
    let naive = AosSystem::new(&w.program, cfg).run().expect("naive run");
    let proper = AosSystem::new(&w.program, AosConfig::new(PolicyKind::Fixed { max: 3 }))
        .run()
        .expect("proper run");
    assert_eq!(naive.result, proper.result);
}

#[test]
fn cct_backend_produces_equivalent_hot_rules() {
    let w = build(&small("db"));
    let flat = AosSystem::new(&w.program, AosConfig::new(PolicyKind::Fixed { max: 3 }))
        .run()
        .expect("flat run");
    let mut cfg = AosConfig::new(PolicyKind::Fixed { max: 3 });
    cfg.profile_backend = ProfileBackend::ContextTree;
    let cct = AosSystem::new(&w.program, cfg).run().expect("cct run");
    assert_eq!(flat.result, cct.result);
    // Identical sampling and thresholds on identical representations of
    // the same data: the whole runs agree exactly.
    assert_eq!(flat.total_cycles(), cct.total_cycles());
    assert_eq!(flat.optimized_code_size, cct.optimized_code_size);
    assert_eq!(flat.final_rules, cct.final_rules);
}

#[test]
fn adaptive_resolving_sits_between_cins_and_fixed_in_walk_cost() {
    let w = build(&small("jess"));
    let frames = |policy| {
        AosSystem::new(&w.program, AosConfig::new(policy))
            .run()
            .expect("runs")
            .frames_walked
    };
    let cins = frames(PolicyKind::ContextInsensitive);
    let adaptive = frames(PolicyKind::AdaptiveResolving { max: 4 });
    let fixed = frames(PolicyKind::Fixed { max: 4 });
    // Adaptive escalates only flagged sites, so it must stay well below the
    // always-deep fixed policy; it tracks cins closely (timing jitter can
    // put it a hair under).
    assert!(
        adaptive < fixed && cins < fixed,
        "walk cost ordering violated: cins {cins}, adaptive {adaptive}, fixed {fixed}"
    );
    let ratio = adaptive as f64 / cins as f64;
    assert!(
        (0.8..2.0).contains(&ratio),
        "adaptive should track cins walk cost, got ratio {ratio}"
    );
}

#[test]
fn ideal_approx_policy_is_sound_and_selective() {
    let w = build(&small("mtrt"));
    let fixed = AosSystem::new(&w.program, AosConfig::new(PolicyKind::Fixed { max: 4 }))
        .run()
        .expect("fixed run");
    let ideal = AosSystem::new(&w.program, AosConfig::new(PolicyKind::IdealApprox { max: 4 }))
        .run()
        .expect("ideal run");
    assert_eq!(fixed.result, ideal.result);
    // The dependence analysis prunes walks through parameter-independent
    // methods, so the ideal approximation walks fewer frames than fixed.
    assert!(
        ideal.frames_walked < fixed.frames_walked,
        "ideal {} vs fixed {}",
        ideal.frames_walked,
        fixed.frames_walked
    );
}
