//! The telemetry subsystem's standing invariant (DESIGN.md §14): turning
//! the metrics registry on charges **zero simulated cycles** and changes
//! **no deterministic artifact**. `results/grid.json` and the fuzz
//! corpus must serialize to the same bytes with `AOCI_METRICS` on or off
//! (the property the CI `metrics-identity` jobs enforce at scale), and
//! the metric snapshots themselves are a deterministic artifact: bit-
//! identical across same-seed reruns and any `AOCI_JOBS` worker count.

use aoci_aos::{AosConfig, AosSystem};
use aoci_bench::{sweep_into, EnvConfig, GridStore};
use aoci_core::{JobPool, PolicyKind};
use aoci_fuzz::persist::corpus_to_value;
use aoci_fuzz::{run_campaign, CampaignConfig};
use aoci_workloads::{build, spec_by_name, WorkloadSpec};

/// A shrunken suite workload: same structure, short run.
fn small(name: &str) -> WorkloadSpec {
    let mut spec = spec_by_name(name).expect("suite workload");
    spec.iterations = 150;
    spec
}

/// An explicit configuration differing from the defaults only where the
/// test says so — never the ambient process environment.
fn env_metrics(metrics: bool) -> EnvConfig {
    EnvConfig { jobs: 2, reps: 2, metrics, ..EnvConfig::default() }
}

/// `grid.json` bytes are identical whether the sweep ran with the
/// registry on or off.
#[test]
fn grid_json_is_byte_identical_with_metrics_on() {
    let specs = vec![small("compress"), small("db")];
    let policies = vec![PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 2 }];
    let render = |metrics: bool| {
        let mut store = GridStore::default();
        sweep_into(&mut store, &specs, &policies, &env_metrics(metrics))
            .expect("an empty store has cells to measure");
        store.to_json()
    };
    assert_eq!(render(false), render(true), "AOCI_METRICS=1 perturbed grid.json");
}

/// The fuzz corpus fingerprint is identical whether every matrix cell ran
/// with the registry on or off.
#[test]
fn fuzz_corpus_is_byte_identical_with_metrics_on() {
    let render = |metrics: bool| {
        let out =
            run_campaign(&CampaignConfig { seed: 5, iters: 6, metrics }, &JobPool::new(2));
        assert!(out.clean(), "findings: {:?}", out.findings);
        aoci_json::to_string_pretty(&corpus_to_value(out.seed, 6, &out.corpus, &out.features))
    };
    assert_eq!(render(false), render(true), "AOCI_METRICS=1 perturbed corpus.json");
}

/// The snapshots themselves are deterministic artifacts: same-seed reruns
/// serialize every epoch to the same bytes at any worker count.
#[test]
fn metric_snapshots_are_byte_identical_across_worker_counts() {
    let workloads: Vec<_> =
        [small("compress"), small("db"), small("jess")].iter().map(build).collect();
    let policies = [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }];
    let jobs: Vec<(usize, PolicyKind)> = (0..workloads.len())
        .flat_map(|wi| policies.iter().map(move |&p| (wi, p)))
        .collect();
    let render = |workers: usize| -> String {
        let (results, _stats) = JobPool::new(workers).run(jobs.clone(), |&(wi, policy)| {
            let report =
                AosSystem::new(&workloads[wi].program, AosConfig::new(policy).enable_metrics())
                    .run()
                    .expect("metered run completes");
            let log = report.telemetry.expect("metrics were enabled");
            assert!(!log.series.is_empty(), "at least the final epoch snapshot");
            aoci_json::to_string(&log.to_value())
        });
        results.into_iter().map(|r| r.output).collect::<Vec<_>>().join("\n")
    };
    let serial = render(1);
    assert!(serial.contains("counters"));
    for workers in [2, 8] {
        assert_eq!(render(workers), serial, "metric snapshots diverged at jobs={workers}");
    }
}

/// Zero-cycle metering, end to end: the full report (clock components,
/// counters, code sizes — everything `to_value` serializes) is identical
/// with the registry on, not just the headline cycle total.
#[test]
fn metered_report_serializes_identically() {
    let w = build(&small("mtrt"));
    let run = |config: AosConfig| {
        let report = AosSystem::new(&w.program, config).run().expect("run completes");
        aoci_json::to_string(&report.to_value())
    };
    let policy = PolicyKind::AdaptiveResolving { max: 3 };
    assert_eq!(
        run(AosConfig::new(policy)),
        run(AosConfig::new(policy).enable_metrics()),
        "enable_metrics changed the serialized report"
    );
}
