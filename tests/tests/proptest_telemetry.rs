//! Property-based tests on the telemetry histogram (DESIGN.md §14): the
//! bucketing function is monotone (so cumulative bucket counts form a
//! valid CDF — the Prometheus exporter relies on this), and merging is
//! associative and commutative with observation (so a histogram built
//! from shards equals the histogram of the concatenation, in any order).

use aoci_telemetry::{bucket_index, Histogram, BUCKETS};
use proptest::prelude::*;

fn from_observations(vs: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vs {
        h.observe(v);
    }
    h
}

proptest! {
    /// `a <= b` implies `bucket_index(a) <= bucket_index(b)`, and every
    /// index stays in range.
    #[test]
    fn bucketing_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        prop_assert!(bucket_index(hi) < BUCKETS);
    }

    /// Merging shards equals observing the concatenation — and the fold
    /// is insensitive to both association and shard order.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(any::<u64>(), 0..20),
        ys in prop::collection::vec(any::<u64>(), 0..20),
        zs in prop::collection::vec(any::<u64>(), 0..20),
    ) {
        let (hx, hy, hz) = (from_observations(&xs), from_observations(&ys), from_observations(&zs));
        let whole = from_observations(&[xs, ys, zs].concat());

        // (x ⊕ y) ⊕ z
        let mut left = hx.clone();
        left.merge(&hy);
        left.merge(&hz);
        // x ⊕ (y ⊕ z)
        let mut right_inner = hy.clone();
        right_inner.merge(&hz);
        let mut right = hx.clone();
        right.merge(&right_inner);
        // z ⊕ y ⊕ x
        let mut rev = hz;
        rev.merge(&hy);
        rev.merge(&hx);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &rev);
        prop_assert_eq!(&left, &whole);
    }

    /// The summary statistics always agree with the raw observations.
    #[test]
    fn summary_stats_match_observations(vs in prop::collection::vec(0u64..1 << 50, 1..30)) {
        let h = from_observations(&vs);
        prop_assert_eq!(h.count(), vs.len() as u64);
        prop_assert_eq!(h.min(), vs.iter().min().copied());
        prop_assert_eq!(h.max(), vs.iter().max().copied());
        prop_assert_eq!(h.sum(), vs.iter().sum::<u64>());
        let p100 = h.quantile(1.0).expect("non-empty");
        prop_assert_eq!(p100, h.max().expect("non-empty"), "q=1.0 is the exact max");
    }
}
