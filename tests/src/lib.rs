//! Workspace-level integration tests (see `tests/tests/`).
