//! Runnable examples for the AOCI reproduction.
//!
//! * `quickstart` — build a tiny program and run it under the adaptive
//!   optimization system.
//! * `hashmap_context` — the paper's Figure 1/2 motivating example:
//!   context-insensitive vs context-sensitive inlining decisions on the
//!   HashMap program.
//! * `policy_sweep` — compare every context-sensitivity policy on one
//!   workload.
//! * `phase_shift` — the decay organizer adapting to a program phase
//!   change.
