//! The paper's Figure 1/2 motivating example, live.
//!
//! Runs the `HashMapTest` program under (a) context-insensitive profiling
//! and (b) context-sensitive profiling (fixed, max 3), and prints the hot
//! profile data and the inlining decisions for `key.hashCode()` inside
//! `HashMap.get` — demonstrating that the context-insensitive system either
//! inlines both `hashCode` implementations at both `runTest` call sites or
//! neither, while the context-sensitive system inlines exactly the right
//! implementation at each site.
//!
//! ```sh
//! cargo run --release -p examples --bin hashmap_context
//! ```

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_workloads::hashmap_test;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hashmap_test(60_000);

    for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
        println!("=== policy: {policy} ===");
        let mut config = AosConfig::new(policy);
        // The example is small; sample a bit faster than the default so the
        // profile fills in quickly.
        config.cost.sample_period = 20_000;
        let (report, db) = AosSystem::new(&program, config).run_detailed()?;

        println!("result: {:?} (must match across policies)", report.result);
        println!(
            "cycles: {}  optimized code: {}  compilations: {}",
            report.total_cycles(),
            report.optimized_code_size,
            report.opt_compilations
        );

        let interesting = ["MyKey.hashCode", "Object.hashCode", "MyKey.equals", "Object.equals"];
        println!("hashCode/equals inlining decisions (callee ⇐ compilation context):");
        for (host, d) in db.decision_log() {
            let callee = program.method(d.callee).name();
            if !interesting.contains(&callee) {
                continue;
            }
            let ctx: Vec<String> = d
                .context
                .iter()
                .map(|cs| format!("{}@{}", program.method(cs.method).name(), cs.site.index()))
                .collect();
            let guarded = if d.guarded { "guarded " } else { "" };
            println!(
                "  [compiling {}] {guarded}{callee} ⇐ {}",
                program.method(*host).name(),
                ctx.join(" ⇐ ")
            );
        }
        println!();
    }

    println!(
        "Expected shape (paper Figure 2): the cins run inlines BOTH hashCode\n\
         implementations wherever the 50/50 site is compiled; the context-\n\
         sensitive run inlines MyKey.hashCode only under runTest's first call\n\
         site and Object.hashCode only under the second."
    );
    Ok(())
}
