//! Quickstart: build a small object-oriented program with the IR builder,
//! run it under the adaptive optimization system, and inspect what the
//! system did.
//!
//! ```sh
//! cargo run --release -p examples --bin quickstart
//! ```

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_ir::{BinOp, Cond, ProgramBuilder};
use aoci_vm::Component;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a hot loop: main repeatedly calls `Shape.area` through
    // a virtual call that is always a Square at one site and always a
    // Circle at the other.
    let mut b = ProgramBuilder::new();
    let area = b.selector("area", 0);
    let shape = b.class("Shape", None);
    let square = b.class("Square", Some(shape));
    let circle = b.class("Circle", Some(shape));
    let side = b.field(shape, "dim");

    for (name, class, factor) in [("Square.area", square, 1), ("Circle.area", circle, 3)] {
        let mut m = b.virtual_method(name, class, area);
        let this = m.receiver().expect("virtual method");
        let d = m.fresh_reg();
        let f = m.fresh_reg();
        m.get_field(d, this, side);
        m.bin(BinOp::Mul, d, d, d);
        m.const_int(f, factor);
        m.bin(BinOp::Mul, d, d, f);
        m.work(30); // some real computation
        m.ret(Some(d));
        m.finish();
    }

    // measure(shape) -> shape.area(), a separate method so the call site
    // can be inlined into it.
    let measure = {
        let mut m = b.static_method("measure", 1);
        let r = m.fresh_reg();
        m.call_virtual(Some(r), area, m.param(0), &[]);
        m.ret(Some(r));
        m.finish()
    };

    let main = {
        let mut m = b.static_method("main", 0);
        let sq = m.fresh_reg();
        let ci = m.fresh_reg();
        let two = m.fresh_reg();
        m.new_obj(sq, square);
        m.new_obj(ci, circle);
        m.const_int(two, 2);
        m.put_field(sq, side, two);
        m.put_field(ci, side, two);
        let i = m.fresh_reg();
        let n = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(n, 20_000);
        m.const_int(one, 1);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, n, out);
        m.call_static(Some(r), measure, &[sq]); // site 0: always Square
        m.bin(BinOp::Add, acc, acc, r);
        m.call_static(Some(r), measure, &[ci]); // site 1: always Circle
        m.bin(BinOp::Add, acc, acc, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };
    let program = b.finish(main)?;

    // Run under adaptive optimization with a context-sensitive policy.
    // (Fixed-level sensitivity: the `area` methods take only a receiver, so
    // the Parameterless early-termination policy would stop their traces at
    // one edge — the paper's acknowledged `this`-parameter exception.)
    let config = AosConfig::new(PolicyKind::Fixed { max: 3 });
    let (report, db) = AosSystem::new(&program, config).run_detailed()?;

    println!("result               : {:?}", report.result);
    println!("total cycles         : {}", report.total_cycles());
    println!("timer samples        : {}", report.samples);
    println!("methods baseline-compiled : {}", report.baseline_compilations);
    println!("optimizing compilations   : {}", report.opt_compilations);
    println!("optimized code (cumulative): {}", report.optimized_code_size);
    println!(
        "compile time         : {:.2}% of execution",
        report.fraction(Component::CompilationThread) * 100.0
    );
    println!(
        "guards: {} checks, {} misses ({:.1}% miss rate)",
        report.counters.guard_checks,
        report.counters.guard_misses,
        report.guard_miss_rate() * 100.0
    );
    println!("\nInlining decisions:");
    for (host, d) in db.decision_log() {
        let guarded = if d.guarded { " (guarded)" } else { "" };
        println!(
            "  while compiling {:<12}: inlined {}{guarded}",
            program.method(*host).name(),
            program.method(d.callee).name(),
        );
    }
    Ok(())
}
