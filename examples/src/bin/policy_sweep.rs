//! Compares every context-sensitivity policy on one workload.
//!
//! ```sh
//! cargo run --release -p examples --bin policy_sweep [workload] [max]
//! ```
//!
//! Defaults to `jess` at maximum sensitivity 3.

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_vm::Component;
use aoci_workloads::{build, spec_by_name};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "jess".to_string());
    let max: u8 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let spec = spec_by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let w = build(&spec);

    let mut policies = vec![PolicyKind::ContextInsensitive];
    policies.extend(PolicyKind::evaluated(max));
    policies.push(PolicyKind::IdealApprox { max });
    policies.push(PolicyKind::AdaptiveResolving { max });

    println!(
        "{:<18} {:>12} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "policy", "cycles", "Δcycles", "code", "Δcode", "compiles", "compile%"
    );
    let mut baseline: Option<(u64, f64)> = None;
    for policy in policies {
        let report = AosSystem::new(&w.program, AosConfig::new(policy)).run()?;
        let cycles = report.total_cycles();
        let code = report.optimized_code_size as f64;
        let (dc, dd) = match baseline {
            None => {
                baseline = Some((cycles, code));
                (0.0, 0.0)
            }
            Some((bc, bcode)) => (
                (bc as f64 / cycles as f64 - 1.0) * 100.0,
                (code / bcode - 1.0) * 100.0,
            ),
        };
        println!(
            "{:<18} {:>12} {:>+8.2}% {:>9.0} {:>+8.2}% {:>8.0} {:>7.2}%",
            policy.to_string(),
            cycles,
            dc,
            code,
            dd,
            report.opt_compilations,
            report.fraction(Component::CompilationThread) * 100.0,
        );
    }
    println!("\nΔcycles: speedup over cins (positive = faster).");
    println!("Δcode:   change in cumulative optimized code (negative = smaller).");
    Ok(())
}
