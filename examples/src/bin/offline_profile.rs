//! Offline vs online profile-directed inlining (paper Section 6 contrast).
//!
//! The paper's system is fully online; the classic alternative gathers
//! profile data in a *training run* and feeds it to the compiler for the
//! production run. This example does both on the `mtrt` workload:
//!
//! 1. **training run** — a context-sensitive online run; its trace profile
//!    is serialized to JSON ([`SavedProfile`]);
//! 2. **offline-profiled run** — a fresh run seeded with the saved profile:
//!    rules form at the first organizer tick, so hot methods compile with
//!    good inlining decisions without an online warm-up;
//! 3. **cold online run** — the baseline for comparison.
//!
//! [`SavedProfile`]: aoci_profile::SavedProfile
//!
//! ```sh
//! cargo run --release -p examples --bin offline_profile
//! ```

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_profile::SavedProfile;
use aoci_workloads::{build, spec_by_name};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = build(&spec_by_name("mtrt").expect("suite workload"));
    let policy = PolicyKind::Fixed { max: 3 };

    // 1. Training run: collect and serialize the profile.
    let (train_report, _, profile) =
        AosSystem::new(&w.program, AosConfig::new(policy)).run_full()?;
    let saved = SavedProfile::from_entries(profile.iter().map(|(k, w)| (k, *w)));
    let json = saved.to_json()?;
    println!(
        "training run : {} cycles, {} traces saved ({} bytes of JSON)",
        train_report.total_cycles(),
        saved.traces.len(),
        json.len()
    );

    // 2. Offline-profiled production run.
    let restored = SavedProfile::from_json(&json)?;
    let mut seeded = AosSystem::new(&w.program, AosConfig::new(policy));
    seeded.seed_profile(restored.entries());
    let offline = seeded.run()?;

    // 3. Cold online run.
    let cold = AosSystem::new(&w.program, AosConfig::new(policy)).run()?;

    assert_eq!(offline.result, cold.result, "profiles must not change semantics");
    println!(
        "cold online  : {} cycles, {} compilations, {} optimized units",
        cold.total_cycles(),
        cold.opt_compilations,
        cold.optimized_code_size
    );
    println!(
        "offline-fed  : {} cycles, {} compilations, {} optimized units",
        offline.total_cycles(),
        offline.opt_compilations,
        offline.optimized_code_size
    );
    let speedup = (cold.total_cycles() as f64 / offline.total_cycles() as f64 - 1.0) * 100.0;
    println!("offline profile speedup over cold online run: {speedup:+.2}%");
    println!(
        "\nThe offline-fed run skips the profile warm-up: the paper notes offline\n\
         systems 'can be quite effective, but are usually somewhat cumbersome to\n\
         use and can be vulnerable to mispredictions' when training and production\n\
         inputs diverge — here they are identical, the best case for offline."
    );
    Ok(())
}
