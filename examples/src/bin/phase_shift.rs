//! Demonstrates the decay organizer adapting the profile to a program
//! phase shift (paper Section 3.2: "the decay organizer attempts to ensure
//! that the system can adapt to program phase shifts").
//!
//! The `jbb` workload flips its receiver mapping halfway through the run.
//! With decay enabled, stale pre-shift traces fade and post-shift traces
//! become hot, so guarded inlines keep matching; with decay disabled
//! (factor 1.0), stale profile lingers and the inline guards keep missing
//! into the virtual-dispatch fallback.
//!
//! ```sh
//! cargo run --release -p examples --bin phase_shift
//! ```

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_workloads::{build, spec_by_name};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name("jbb").expect("suite workload");
    let w = build(&spec);

    for (label, decay) in [("decay ON (0.95)", 0.95), ("decay OFF (1.0)", 1.0)] {
        let mut config = AosConfig::new(PolicyKind::Fixed { max: 3 });
        config.decay_factor = decay;
        let report = AosSystem::new(&w.program, config).run()?;
        println!("{label}:");
        println!("  total cycles   : {}", report.total_cycles());
        println!(
            "  guard checks   : {} ({} misses, {:.1}% miss rate)",
            report.counters.guard_checks,
            report.counters.guard_misses,
            report.guard_miss_rate() * 100.0
        );
        println!(
            "  dcg entries at end : {} (decay prunes stale traces)",
            report.dcg_entries
        );
        println!("  final rules    : {}", report.final_rules);
        println!();
    }
    println!(
        "Expect decay-ON to end with a leaner DCG biased toward the second\n\
         phase; decay-OFF accumulates both phases' traces, diluting rules and\n\
         leaving guards tuned to stale receivers."
    );
    Ok(())
}
